//! Inter-partition communication backends.
//!
//! The paper's implementation exchanged tuples through files on a shared
//! filesystem ("we could not find an MPI package that works with the
//! version of Java we have used") and reports the resulting IO overhead
//! in Fig. 2, predicting that an in-memory transport (MPI) would shrink
//! it. We implement both ends of that comparison:
//!
//! * [`CommMode::Channel`] — crossbeam channels, the "MPI-like" zero-copy
//!   transport;
//! * [`CommMode::SharedFile`] — actual files in a shared directory, one
//!   per (round, sender, receiver), serialized as N-Triples text (like
//!   the paper's Jena implementation) or as the compact binary batch
//!   format.
//!
//! Both are round-synchronous: every `send` happens before the round
//! barrier, every `collect` after it, so `collect` sees exactly the
//! messages addressed to this worker this round.

use crossbeam::channel::{unbounded, Receiver, Sender};
use owlpar_rdf::triple::{decode_batch, encode_batch};
use owlpar_rdf::{parse_ntriples, Dictionary, Graph, Triple};
use std::path::PathBuf;
use std::sync::Arc;

/// Transport selection.
#[derive(Debug, Clone, Default)]
pub enum CommMode {
    /// In-memory channels (the paper's hypothetical MPI transport).
    #[default]
    Channel,
    /// Files in a shared directory (the paper's actual transport).
    SharedFile {
        /// Directory to exchange through; `None` = fresh temp dir.
        dir: Option<PathBuf>,
        /// On-disk message encoding.
        format: WireFormat,
    },
}

/// On-disk message encoding for [`CommMode::SharedFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// N-Triples text — what a Jena-based implementation writes.
    #[default]
    NTriples,
    /// Little-endian 12-byte id triples.
    Binary,
}

/// One worker's endpoint of the fabric.
pub struct WorkerComm {
    me: usize,
    round: usize,
    backend: Backend,
    /// Bytes written by this worker (file mode) or triples moved
    /// (channel mode, 12 bytes each).
    pub bytes_sent: u64,
}

enum Backend {
    Channel {
        senders: Vec<Sender<Vec<Triple>>>,
        receiver: Receiver<Vec<Triple>>,
    },
    File {
        dir: PathBuf,
        dict: Arc<Dictionary>,
        format: WireFormat,
    },
}

/// Build the k-worker fabric for a mode. `dict` is the frozen global
/// dictionary (file mode decodes against it).
pub fn build_fabric(k: usize, mode: &CommMode, dict: Arc<Dictionary>) -> Vec<WorkerComm> {
    match mode {
        CommMode::Channel => {
            let mut senders: Vec<Sender<Vec<Triple>>> = Vec::with_capacity(k);
            let mut receivers: Vec<Receiver<Vec<Triple>>> = Vec::with_capacity(k);
            for _ in 0..k {
                let (s, r) = unbounded();
                senders.push(s);
                receivers.push(r);
            }
            receivers
                .into_iter()
                .enumerate()
                .map(|(me, receiver)| WorkerComm {
                    me,
                    round: 0,
                    backend: Backend::Channel {
                        senders: senders.clone(),
                        receiver,
                    },
                    bytes_sent: 0,
                })
                .collect()
        }
        CommMode::SharedFile { dir, format } => {
            let dir = dir.clone().unwrap_or_else(|| {
                let mut d = std::env::temp_dir();
                d.push(format!(
                    "owlpar-comm-{}-{:x}",
                    std::process::id(),
                    crate::comm::unique_nonce()
                ));
                d
            });
            std::fs::create_dir_all(&dir).expect("create comm dir");
            (0..k)
                .map(|me| WorkerComm {
                    me,
                    round: 0,
                    backend: Backend::File {
                        dir: dir.clone(),
                        dict: Arc::clone(&dict),
                        format: *format,
                    },
                    bytes_sent: 0,
                })
                .collect()
        }
    }
}

/// Monotonic nonce for temp-dir names (avoids collisions between
/// concurrently running fabrics in one process, e.g. parallel tests).
pub(crate) fn unique_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    NONCE.fetch_add(1, Ordering::Relaxed)
}

impl WorkerComm {
    /// This worker's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Send a batch to worker `to`. Must happen before the round barrier.
    pub fn send(&mut self, to: usize, batch: &[Triple]) {
        if batch.is_empty() {
            return;
        }
        match &mut self.backend {
            Backend::Channel { senders, .. } => {
                self.bytes_sent += (batch.len() * 12) as u64;
                senders[to]
                    .send(batch.to_vec())
                    .expect("receiver alive until fabric drop");
            }
            Backend::File { dir, dict, format } => {
                let path = dir.join(format!("r{}_f{}_t{}.msg", self.round, self.me, to));
                let bytes = match format {
                    WireFormat::Binary => encode_batch(batch),
                    WireFormat::NTriples => {
                        let mut text = String::new();
                        for t in batch {
                            let term = |id| {
                                dict.term(id).expect("frozen dictionary covers all ids")
                            };
                            text.push_str(&format!(
                                "{} {} {} .\n",
                                term(t.s),
                                term(t.p),
                                term(t.o)
                            ));
                        }
                        text.into_bytes()
                    }
                };
                self.bytes_sent += bytes.len() as u64;
                std::fs::write(path, bytes).expect("write comm file");
            }
        }
    }

    /// Non-blocking drain for the asynchronous mode (paper §VI-B: "by
    /// making a partition not wait till all other partitions finish, but
    /// rather start immediately using all the currently received tuples").
    /// Channel transport only — the file transport is inherently
    /// round-structured.
    pub fn try_collect(&mut self) -> Vec<Triple> {
        match &mut self.backend {
            Backend::Channel { receiver, .. } => {
                let mut out = Vec::new();
                while let Ok(batch) = receiver.try_recv() {
                    out.extend(batch);
                }
                out
            }
            Backend::File { .. } => {
                panic!("asynchronous mode requires the channel transport")
            }
        }
    }

    /// Drain every message addressed to this worker this round. Must be
    /// called after the round barrier. Advances to the next round.
    pub fn collect(&mut self) -> Vec<Triple> {
        let out = match &mut self.backend {
            Backend::Channel { receiver, .. } => {
                let mut out = Vec::new();
                while let Ok(batch) = receiver.try_recv() {
                    out.extend(batch);
                }
                out
            }
            Backend::File { dir, dict, format } => {
                let mut out = Vec::new();
                let prefix = format!("r{}_", self.round);
                let suffix = format!("_t{}.msg", self.me);
                let entries = std::fs::read_dir(&*dir).expect("read comm dir");
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if !name.starts_with(&prefix) || !name.ends_with(&suffix) {
                        continue;
                    }
                    let bytes = std::fs::read(entry.path()).expect("read comm file");
                    match format {
                        WireFormat::Binary => out.extend(decode_batch(&bytes)),
                        WireFormat::NTriples => {
                            let text = String::from_utf8(bytes).expect("utf8 ntriples");
                            let mut tmp = Graph::new();
                            parse_ntriples(&text, &mut tmp).expect("well-formed message");
                            for t in tmp.store.iter() {
                                let (s, p, o) = tmp.decode(*t);
                                let id = |term| {
                                    dict.id(term).expect("terms pre-interned in global dict")
                                };
                                out.push(Triple::new(id(&s), id(&p), id(&o)));
                            }
                        }
                    }
                    let _ = std::fs::remove_file(entry.path());
                }
                out
            }
        };
        self.round += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_rdf::NodeId;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn dict_with(n: u32) -> Arc<Dictionary> {
        let mut d = Dictionary::new();
        for i in 0..n {
            d.intern_iri(format!("http://x/n{i}"));
        }
        Arc::new(d)
    }

    #[test]
    fn channel_roundtrip() {
        let mut fabric = build_fabric(2, &CommMode::Channel, dict_with(10));
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(1, 2, 3), t(4, 5, 6)]);
        w1.send(0, &[t(7, 8, 9)]);
        assert_eq!(w1.collect(), vec![t(1, 2, 3), t(4, 5, 6)]);
        assert_eq!(w0.collect(), vec![t(7, 8, 9)]);
        // next round: nothing pending
        assert!(w0.collect().is_empty());
    }

    #[test]
    fn channel_empty_batch_not_sent() {
        let mut fabric = build_fabric(2, &CommMode::Channel, dict_with(1));
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[]);
        assert_eq!(w0.bytes_sent, 0);
        assert!(w1.collect().is_empty());
    }

    fn file_mode(format: WireFormat) -> CommMode {
        CommMode::SharedFile { dir: None, format }
    }

    #[test]
    fn file_binary_roundtrip() {
        let mut fabric = build_fabric(3, &file_mode(WireFormat::Binary), dict_with(10));
        let mut w2 = fabric.pop().unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(2, &[t(1, 2, 3)]);
        w1.send(2, &[t(4, 5, 6)]);
        let mut got = w2.collect();
        got.sort_unstable();
        assert_eq!(got, vec![t(1, 2, 3), t(4, 5, 6)]);
        assert!(w0.collect().is_empty());
        assert!(w1.collect().is_empty());
    }

    #[test]
    fn file_ntriples_roundtrip_via_dictionary() {
        let dict = dict_with(10);
        let mut fabric = build_fabric(2, &file_mode(WireFormat::NTriples), Arc::clone(&dict));
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(0, 1, 2), t(3, 4, 5)]);
        assert!(w0.bytes_sent > 24, "text encoding is bigger than binary");
        let mut got = w1.collect();
        got.sort_unstable();
        assert_eq!(got, vec![t(0, 1, 2), t(3, 4, 5)]);
    }

    #[test]
    fn file_rounds_are_isolated() {
        let mut fabric = build_fabric(2, &file_mode(WireFormat::Binary), dict_with(4));
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        // round 0
        w0.send(1, &[t(0, 1, 2)]);
        assert_eq!(w1.collect(), vec![t(0, 1, 2)]);
        let _ = w0.collect();
        // round 1: a message from round 0 must not reappear
        w0.send(1, &[t(1, 2, 3)]);
        assert_eq!(w1.collect(), vec![t(1, 2, 3)]);
    }

    #[test]
    fn ntriples_mode_counts_more_bytes_than_binary() {
        let dict = dict_with(10);
        let batch = [t(0, 1, 2), t(3, 4, 5), t(6, 7, 8)];
        let mut nt =
            build_fabric(2, &file_mode(WireFormat::NTriples), Arc::clone(&dict));
        let mut bin = build_fabric(2, &file_mode(WireFormat::Binary), dict);
        nt[0].send(1, &batch);
        bin[0].send(1, &batch);
        assert!(nt[0].bytes_sent > bin[0].bytes_sent * 3);
    }
}
