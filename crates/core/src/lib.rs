//! The parallel OWL reasoner (Algorithm 3 of the paper).
//!
//! ```text
//! Input:  Initial base tuples, rule-base
//! Output: Base tuples and inferred tuples
//! 1: Partition the data or rule-base. Assign a partition to each node.
//! At each node:
//! 2: while !terminate:
//! 3:   Create all the new tuples for the given rule base and base tuples
//! 4:   Send newly generated tuples to other processors as necessary
//! 5:   Receive tuples from other processors, add them to the base tuples
//! ```
//!
//! The cluster of the paper (one partition per processor core, message
//! exchange over a shared filesystem) is reproduced as one OS thread per
//! partition with a private [`owlpar_rdf::TripleStore`]; *all*
//! inter-partition traffic flows through an explicit [`comm`] backend —
//! crossbeam channels, or real files in a shared directory serialized as
//! N-Triples, matching the paper's transport. Workers proceed in
//! barrier-synchronized rounds and terminate when a round moves no triples
//! anywhere (the paper's quiescence condition).
//!
//! The runtime is fault-tolerant end to end: transport operations return
//! typed [`error`]s instead of panicking, file writes are atomic with
//! retried transient failures, corrupted messages are skipped with a
//! report, worker panics are contained by the master ([`master`]), and a
//! seeded [`fault::FaultPlan`] can inject failures deterministically for
//! testing.
//!
//! Per-phase timers (reasoning / IO / synchronization / aggregation)
//! reproduce the Fig. 2 overhead breakdown; [`model`] provides the cubic
//! performance model of Fig. 4 and the theoretical-maximum speedup of
//! Fig. 3.
//!
//! ```no_run
//! use owlpar_core::{ParallelConfig, PartitioningStrategy, run_parallel};
//! use owlpar_datagen::{generate_lubm, LubmConfig};
//!
//! let mut graph = generate_lubm(&LubmConfig::mini(2));
//! let report = run_parallel(&mut graph, &ParallelConfig {
//!     k: 4,
//!     strategy: PartitioningStrategy::data_graph(),
//!     ..ParallelConfig::default()
//! }).expect("parallel run");
//! println!("derived {} triples in {} rounds (max over workers)",
//!          report.derived, report.max_rounds());
//! ```

// Runtime code must propagate failures as typed errors, never panic;
// the unwrap/expect/panic deny gates come from `[workspace.lints]` in the
// workspace manifest. The one deliberate panic (fault injection) carries
// its own narrow allow in `fault`.
//
// `deny` rather than `forbid`: the thread-CPU-time probe in [`cputime`]
// needs one scoped `#[allow(unsafe_code)]` for its libc syscall.
#![deny(unsafe_code)]

pub mod backoff;
pub mod barrier;
pub mod comm;
pub mod config;
pub mod cputime;
pub mod durable;
pub mod error;
pub mod fault;
pub mod frame;
pub mod master;
pub mod model;
pub mod plan;
pub mod stats;
pub mod worker;

pub use backoff::Backoff;
pub use comm::{
    check_payload_bounds, CommMode, PayloadBoundsError, Transport, TransportFactory, WireFormat,
    MAX_PAYLOAD_BYTES,
};
pub use config::{FaultRecovery, ParallelConfig, PartitioningStrategy};
pub use durable::{
    atomic_write, atomic_write_synced, crc32, digest128, hex128, sync_dir, Digest128, TMP_SUFFIX,
};
pub use error::{CommError, RunError, SkippedMessage, WorkerError};
pub use fault::{CrashPlan, CrashPoint, CrashState, FaultKind, FaultPlan};
pub use frame::{
    decode_triple_block, encode_triple_block, read_crc_frame, read_frame, write_crc_frame,
    write_frame, FrameError, TripleBlockError,
};
pub use master::{prepare_run, reclose_serial, run_parallel, run_serial, RunPlan, RunReport};
pub use model::{fit_cubic, PolyModel};
pub use plan::{
    analyze_rules_only, analyze_strategy, auto_candidates, select_auto, AutoSelection,
    PlanningBase,
};
pub use stats::{WireBytes, WirePhase, WireRound, WorkerStats};
