//! The master side of Algorithm 3: partition, distribute, join, aggregate.
//!
//! "The master node partitions either the data-set or the rule-base and
//! sends the appropriate partition to each processor in the system ...
//! Apart from this, the master node also sends a partition table to each
//! processor. ... the master node itself has no role to play once the
//! initial partition is done."
//!
//! Unlike the quote, this master has one more job: **containment and
//! recovery**. Every worker runs inside a `catch_unwind` wrapper; a
//! panicking worker is converted into a structured
//! [`WorkerError::Panicked`], the shared failure flag is raised and the
//! barrier defected on its behalf, so the survivors drain cleanly (see
//! `worker`). If the run lost workers, the master either reports a
//! [`RunError::Workers`] or — for data partitioning under
//! [`FaultRecovery::AdoptAndReclose`] — adopts the loss: the original
//! graph still holds every base triple and the survivors' stores are
//! subsets of the closure, so re-closing serially yields *exactly* the
//! serial closure (forward closure is monotonic in its inputs).

use crate::barrier::RoundBarrier;
use crate::comm::{build_fabric_with_faults, CommMode};
use crate::config::{
    DataPolicy, FaultRecovery, ParallelConfig, PartitioningStrategy, RoundMode, UnsafeRulePolicy,
};
use crate::error::{RunError, WorkerError};
use crate::stats::{PhaseBreakdown, WorkerStats};
use crate::worker::{
    run_worker, run_worker_async, AsyncControl, Routing, RunFlags, WorkerCtx,
};
use owlpar_datalog::{MaterializationStrategy, Reasoner, Rule};
use owlpar_horst::HorstReasoner;
use owlpar_lint::{lint_rules, LintOptions, PartitionContext};
use owlpar_obs as obs;
use owlpar_partition::metrics::{or_excess, quality, PartitionQuality};
use owlpar_partition::multilevel::PartitionOptions;
use owlpar_partition::{partition_data, partition_rules, OwnershipPolicy};
use owlpar_rdf::vocab::RDF_TYPE;
use owlpar_rdf::{Graph, Term, Triple, TripleStore};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything measured about one parallel run.
#[derive(Debug)]
pub struct RunReport {
    /// Number of workers.
    pub k: usize,
    /// Per-worker counters (a lost worker keeps its slot, with default
    /// counters — `workers.len() == k` always holds).
    pub workers: Vec<WorkerStats>,
    /// Max-per-phase breakdown (Fig. 2 convention) + aggregation.
    pub breakdown: PhaseBreakdown,
    /// Time spent partitioning (Table I column).
    pub partition_time: Duration,
    /// **Simulated cluster wall-clock**: Σ over rounds of the slowest
    /// worker's CPU charge — what a machine with one core per partition
    /// would measure. Equals host wall-clock when cores ≥ k.
    pub parallel_time: Duration,
    /// Host wall-clock from worker spawn to last join (contended when the
    /// host has fewer cores than workers; reported for transparency).
    pub host_parallel_time: Duration,
    /// End-to-end time including partitioning and aggregation.
    pub total_time: Duration,
    /// Distinct new triples across the union.
    pub derived: usize,
    /// Final closure size (base + schema + derived).
    pub closure_size: usize,
    /// Output replication excess (paper's OR convention, ≈0 is perfect).
    pub output_replication: f64,
    /// Pre-run partition quality (data strategies only).
    pub partition_quality: Option<PartitionQuality>,
    /// Ownership-graph edge-cut (graph policy only).
    pub edge_cut: Option<u64>,
    /// Workers lost during the run (empty on a clean run). Non-empty
    /// only when recovery succeeded — otherwise the run is an `Err`.
    pub worker_errors: Vec<WorkerError>,
    /// True when worker losses were recovered by the adopt-and-reclose
    /// pass (the closure is still exactly the serial closure).
    pub recovered: bool,
    /// Wire-traffic accounting, filled by the `owlpar-net` cluster
    /// master (the only runtime whose exchanges cross real sockets);
    /// `None` for in-process runs.
    pub wire: Option<crate::stats::WireBytes>,
}

impl RunReport {
    /// Largest round count over the workers.
    pub fn max_rounds(&self) -> usize {
        self.workers.iter().map(|w| w.rounds).max().unwrap_or(0)
    }

    /// Total messages skipped-with-report across workers.
    pub fn total_skipped(&self) -> usize {
        self.workers.iter().map(|w| w.skipped).sum()
    }

    /// Total transient IO failures absorbed by retrying, across workers.
    pub fn total_io_retries(&self) -> usize {
        self.workers.iter().map(|w| w.io_retries).sum()
    }

    /// One-line human summary — what the CLI and the serving layer
    /// print. Deliberately includes the skipped-message and IO-retry
    /// totals (even when zero) so transport trouble is visible, not
    /// buried in per-worker counters.
    pub fn summary(&self) -> String {
        format!(
            "{} worker(s), {} round(s), {} derived, closure {} triples, \
             {} message(s) skipped, {} io retr{}, simulated cluster time {:.3}s",
            self.k,
            self.max_rounds(),
            self.derived,
            self.closure_size,
            self.total_skipped(),
            self.total_io_retries(),
            if self.total_io_retries() == 1 { "y" } else { "ies" },
            self.parallel_time.as_secs_f64(),
        )
    }
}

/// Materialize `graph` serially; returns (derived count, CPU time of the
/// reasoning thread — comparable with the simulated parallel times).
pub fn run_serial(graph: &mut Graph, materialization: MaterializationStrategy) -> (usize, Duration) {
    let rec = obs::global();
    let mut lane = rec.track("serial");
    let start = crate::cputime::CpuTimer::start();
    let compile_span = lane.begin(obs::Phase::Compile, obs::NO_ROUND);
    let hr = HorstReasoner::from_graph(graph, materialization);
    lane.end(compile_span);
    let join_span = lane.begin(obs::Phase::Join, obs::NO_ROUND);
    let derived = hr.materialize(graph);
    lane.end(join_span);
    (derived, start.elapsed())
}

/// Resolve the per-worker in-node thread budget before spawning: an
/// auto (`threads == 0`) [`MaterializationStrategy::ForwardParallel`]
/// splits the machine's parallelism evenly across the `k` workers so the
/// run does not oversubscribe cores. Every other strategy passes through.
/// Public so the cluster master (`owlpar-net`) ships workers the same
/// resolved strategy the in-process spawner would use.
pub fn resolve_materialization(m: MaterializationStrategy, k: usize) -> MaterializationStrategy {
    match m {
        MaterializationStrategy::ForwardParallel { threads: 0 } => {
            let avail = std::thread::available_parallelism().map_or(1, usize::from);
            MaterializationStrategy::ForwardParallel {
                threads: (avail / k.max(1)).max(1),
            }
        }
        other => other,
    }
}

/// Render a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Everything Algorithm 3's master computes *before* any worker exists:
/// the compiled + linted effective rule-base, the partition plan, the
/// per-worker routing tables, and the partition-quality metrics. Shared
/// between [`run_parallel`] (which spawns threads on it) and the
/// `owlpar-net` cluster master (which ships it to worker processes over
/// TCP) so both runtimes distribute byte-identical work.
pub struct RunPlan {
    /// Number of partitions.
    pub k: usize,
    /// Effective strategy — differs from `cfg.strategy` only when the
    /// lint gate's replication fallback downgraded a data strategy.
    pub strategy: PartitioningStrategy,
    /// The effective rule-base (compiled ontology rules + extras).
    pub all_rules: Vec<Rule>,
    /// Schema triples, replicated to every worker.
    pub schema: Vec<Triple>,
    /// Per-worker base (instance) partitions.
    pub bases: Vec<Vec<Triple>>,
    /// Per-worker rule subsets.
    pub rules_per_worker: Vec<Vec<Rule>>,
    /// Per-worker routing tables.
    pub routing: Vec<Routing>,
    /// Pre-run partition quality (data strategies only).
    pub quality: Option<PartitionQuality>,
    /// Ownership-graph edge-cut, when the policy computes one.
    pub edge_cut: Option<u64>,
    /// Time spent compiling, linting and partitioning.
    pub partition_time: Duration,
    /// The analyzer's report for the selected plan — `Some` only when
    /// the run was configured with [`PartitioningStrategy::Auto`].
    pub analysis: Option<owlpar_lint::PlanReport>,
}

impl RunPlan {
    /// Whether losing a worker under this plan is recoverable by the
    /// adopt-and-reclose pass (guaranteed only when every worker ran the
    /// complete rule-base, i.e. data partitioning).
    pub fn recoverable(&self, recovery: FaultRecovery) -> bool {
        matches!(recovery, FaultRecovery::AdoptAndReclose)
            && matches!(self.strategy, PartitioningStrategy::Data(_))
    }
}

/// Serial re-close over the master graph with the *effective* rule-base
/// — the adopt-and-reclose recovery step. Recompiling via [`run_serial`]
/// would silently drop `cfg.extra_rules`, so the caller passes the
/// rule-base the lost run actually used.
pub fn reclose_serial(graph: &mut Graph, cfg: &ParallelConfig, all_rules: &[Rule]) {
    if cfg.extra_rules.is_empty() {
        run_serial(graph, cfg.materialization);
    } else {
        Reasoner::new(all_rules.to_vec(), cfg.materialization).materialize(&mut graph.store);
    }
}

/// Compile, lint and partition — the master's pre-spawn half of
/// Algorithm 3. Interns the ontology's last constants into `graph.dict`
/// (so freeze the dictionary *after* calling this), and refuses with
/// [`RunError::Lint`] / [`RunError::Config`] before any work is
/// distributed.
pub fn prepare_run(graph: &mut Graph, cfg: &ParallelConfig) -> Result<RunPlan, RunError> {
    if cfg.k < 1 {
        return Err(RunError::config("k must be at least 1"));
    }
    let rec = obs::global();
    let mut lane = rec.track("master");
    let part_span = lane.begin(obs::Phase::Partition, obs::NO_ROUND);

    // Compile the ontology (this interns the last few constants, so it
    // must precede freezing the dictionary).
    let t_part = Instant::now();
    let hr = HorstReasoner::from_graph(graph, cfg.materialization);
    let rdf_type = graph.dict.id(&Term::iri(RDF_TYPE));

    // Static partition-safety gate: lint the *effective* rule-base
    // (compiled ontology rules plus any user-supplied extras) against the
    // deployment context before any worker spawns. A deny finding means a
    // distributed run could silently miss derivations.
    let mut all_rules: Vec<Rule> = hr.rules().to_vec();
    all_rules.extend(cfg.extra_rules.iter().cloned());
    let mut strategy = cfg.strategy.clone();

    // Auto strategy: score the candidate plans with the static analyzer
    // and take the argmin-cost deny-free one. A plan-level deny on every
    // candidate refuses the run here — before the lint gate, before
    // partitioning, before any worker exists — and is not overridable.
    let mut analysis = None;
    if matches!(strategy, PartitioningStrategy::Auto) {
        let base = crate::plan::PlanningBase::new(
            all_rules.clone(),
            hr.schema_triples.clone(),
            hr.instance_triples.clone(),
            rdf_type,
        );
        let selection = crate::plan::select_auto(&base, &graph.dict, cfg.k)?;
        strategy = selection.strategy;
        analysis = Some(selection.report);
    }

    let context = match &strategy {
        PartitioningStrategy::Data(_) | PartitioningStrategy::Hybrid { .. } => {
            PartitionContext::DataPartitioned
        }
        PartitioningStrategy::Rule { .. } => PartitionContext::RulePartitioned,
        // Resolved to a concrete strategy above.
        PartitioningStrategy::Auto => unreachable!("auto strategy resolved before linting"),
    };
    let lint = lint_rules(&all_rules, &LintOptions::for_context(context));
    if lint.has_deny() {
        match cfg.unsafe_rules {
            UnsafeRulePolicy::Refuse => return Err(RunError::Lint { report: lint }),
            UnsafeRulePolicy::ReplicateData => {
                // Replication makes every join shape evaluable; verify the
                // deny findings actually clear under it (structural
                // problems — broken rules — don't, and still refuse).
                let fallback = lint_rules(
                    &all_rules,
                    &LintOptions::for_context(PartitionContext::RulePartitioned),
                );
                if fallback.has_deny() {
                    return Err(RunError::Lint { report: fallback });
                }
                strategy = PartitioningStrategy::Rule { weighted: false };
            }
        }
    }

    // Partition.
    let hist;
    let weights = if matches!(strategy, PartitioningStrategy::Rule { weighted: true }) {
        hist = graph.store.predicate_counts();
        Some(&hist)
    } else {
        None
    };
    let PartitionParts {
        bases,
        rules_per_worker,
        routing,
        quality,
        edge_cut,
    } = build_partitions(
        &strategy,
        cfg.k,
        &all_rules,
        &hr.instance_triples,
        &graph.dict,
        rdf_type,
        weights,
    )?;
    lane.end(part_span);
    Ok(RunPlan {
        k: cfg.k,
        strategy,
        all_rules,
        schema: hr.schema_triples.clone(),
        bases,
        rules_per_worker,
        routing,
        quality,
        edge_cut,
        partition_time: t_part.elapsed(),
        analysis,
    })
}

/// One strategy's concrete partitioning — the post-lint half of
/// [`prepare_run`]. `pub(crate)` so the plan analyzer
/// (`crate::plan`) scores candidate strategies through exactly the code
/// path the runtime then distributes: same partitioner, same routing
/// tables, same quality metrics.
pub(crate) struct PartitionParts {
    /// Per-worker base (instance) partitions.
    pub bases: Vec<Vec<Triple>>,
    /// Per-worker rule subsets.
    pub rules_per_worker: Vec<Vec<Rule>>,
    /// Per-worker routing tables.
    pub routing: Vec<Routing>,
    /// Pre-run partition quality (data strategies only).
    pub quality: Option<PartitionQuality>,
    /// Ownership-graph edge-cut, when the policy computes one.
    pub edge_cut: Option<u64>,
}

/// Partition `instance_triples` and `all_rules` for `k` workers under a
/// **concrete** (non-[`PartitioningStrategy::Auto`]) strategy.
/// `predicate_counts` weighs the rule-dependency edges when the strategy
/// asks for it.
pub(crate) fn build_partitions(
    strategy: &PartitioningStrategy,
    k: usize,
    all_rules: &[Rule],
    instance_triples: &[Triple],
    dict: &owlpar_rdf::Dictionary,
    rdf_type: Option<owlpar_rdf::NodeId>,
    predicate_counts: Option<&owlpar_rdf::fx::FxHashMap<owlpar_rdf::NodeId, usize>>,
) -> Result<PartitionParts, RunError> {
    match strategy {
        PartitioningStrategy::Data(policy) => {
            let ownership = match policy {
                DataPolicy::Graph(o) => OwnershipPolicy::Graph(*o),
                DataPolicy::Hash { seed } => OwnershipPolicy::Hash { seed: *seed },
                DataPolicy::Domain => OwnershipPolicy::Domain(None),
                DataPolicy::Streaming => OwnershipPolicy::Streaming,
            };
            let dp = partition_data(instance_triples, dict, rdf_type, k, &ownership);
            let q = quality(&dp.parts, rdf_type);
            let owner = Arc::new(dp.owner);
            Ok(PartitionParts {
                routing: (0..k)
                    .map(|_| Routing::Data {
                        owner: Arc::clone(&owner),
                    })
                    .collect(),
                bases: dp.parts,
                rules_per_worker: (0..k).map(|_| all_rules.to_vec()).collect(),
                quality: Some(q),
                edge_cut: dp.edge_cut,
            })
        }
        PartitioningStrategy::Hybrid { rule_groups } => {
            let g = *rule_groups;
            if g < 1 || !k.is_multiple_of(g) {
                return Err(RunError::config(format!(
                    "rule_groups ({g}) must divide k ({k})"
                )));
            }
            let d = k / g;
            let dp = partition_data(
                instance_triples,
                dict,
                rdf_type,
                d,
                &OwnershipPolicy::Graph(PartitionOptions::default()),
            );
            let q = quality(&dp.parts, rdf_type);
            let rp = Arc::new(partition_rules(
                all_rules,
                g,
                None,
                &PartitionOptions::default(),
            ));
            let owner = Arc::new(dp.owner);
            let shared_rules = Arc::new(all_rules.to_vec());
            Ok(PartitionParts {
                // worker w = group (w / d) × shard (w % d)
                bases: (0..k).map(|w| dp.parts[w % d].clone()).collect(),
                rules_per_worker: (0..k)
                    .map(|w| {
                        rp.parts[w / d]
                            .iter()
                            .map(|&i| all_rules[i].clone())
                            .collect()
                    })
                    .collect(),
                routing: (0..k)
                    .map(|_| Routing::Hybrid {
                        owner: Arc::clone(&owner),
                        groups: Arc::clone(&rp),
                        all_rules: Arc::clone(&shared_rules),
                        data_shards: d as u32,
                    })
                    .collect(),
                quality: Some(q),
                edge_cut: dp.edge_cut,
            })
        }
        PartitioningStrategy::Rule { .. } => {
            let rp = partition_rules(all_rules, k, predicate_counts, &PartitionOptions::default());
            let shared_rules = Arc::new(all_rules.to_vec());
            let rp = Arc::new(rp);
            Ok(PartitionParts {
                bases: (0..k).map(|_| instance_triples.to_vec()).collect(),
                rules_per_worker: (0..k)
                    .map(|p| {
                        rp.parts[p].iter().map(|&i| all_rules[i].clone()).collect()
                    })
                    .collect(),
                routing: (0..k)
                    .map(|_| Routing::Rule {
                        partitions: Arc::clone(&rp),
                        all_rules: Arc::clone(&shared_rules),
                    })
                    .collect(),
                quality: None,
                edge_cut: Some(rp.edge_cut),
            })
        }
        PartitioningStrategy::Auto => Err(RunError::config(
            "auto strategy must be resolved by the plan analyzer before partitioning",
        )),
    }
}

/// Run Algorithm 3 over `graph`, materializing it in place.
///
/// Errors: [`RunError::Config`] for an invalid configuration,
/// [`RunError::Fabric`] when the transport cannot even be built, and
/// [`RunError::Workers`] when workers were lost and recovery was
/// unavailable (non-data strategy) or disabled ([`FaultRecovery::Fail`]).
pub fn run_parallel(graph: &mut Graph, cfg: &ParallelConfig) -> Result<RunReport, RunError> {
    if matches!(cfg.rounds, RoundMode::Async) && !matches!(cfg.comm, CommMode::Channel) {
        return Err(RunError::config(
            "asynchronous rounds require the channel transport",
        ));
    }
    let start_total = Instant::now();
    let before_len = graph.len();
    let plan = prepare_run(graph, cfg)?;
    let recoverable = plan.recoverable(cfg.recovery);
    let RunPlan {
        k: _,
        strategy: _,
        all_rules,
        schema,
        bases,
        rules_per_worker,
        routing,
        quality: partition_quality,
        edge_cut,
        partition_time,
        analysis: _,
    } = plan;

    // Freeze the dictionary and build the fabric.
    let dict = Arc::new(graph.dict.clone());
    let fabric = build_fabric_with_faults(cfg.k, &cfg.comm, dict, cfg.fault.as_deref())
        .map_err(|source| RunError::Fabric { source })?;
    let barrier = Arc::new(RoundBarrier::new(cfg.k));
    let total_sent = Arc::new(AtomicU64::new(0));
    let flags = Arc::new(RunFlags::new());
    let progress: Vec<Arc<AtomicUsize>> =
        (0..cfg.k).map(|_| Arc::new(AtomicUsize::new(0))).collect();

    // Spawn the workers, each inside a panic-containment wrapper.
    let t_par = Instant::now();
    let schema = &schema;
    let async_control = Arc::new(AsyncControl::default());
    type WorkerOutcome = Result<(TripleStore, WorkerStats), WorkerError>;
    let mut results: Vec<Option<WorkerOutcome>> = (0..cfg.k).map(|_| None).collect();
    let scope_ok = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.k);
        let mut parts_iter = bases.into_iter();
        let mut rules_iter = rules_per_worker.into_iter();
        let mut routing_iter = routing.into_iter();
        let mut fabric_iter = fabric.into_iter();
        for id in 0..cfg.k {
            // the iterators have exactly k elements by construction
            let (Some(base), Some(rules), Some(routing), Some(comm)) = (
                parts_iter.next(),
                rules_iter.next(),
                routing_iter.next(),
                fabric_iter.next(),
            ) else {
                break;
            };
            let barrier = Arc::clone(&barrier);
            let total_sent = Arc::clone(&total_sent);
            let flags = Arc::clone(&flags);
            let progress = Arc::clone(&progress[id]);
            let async_control = Arc::clone(&async_control);
            let materialization = resolve_materialization(cfg.materialization, cfg.k);
            let rounds_mode = cfg.rounds;
            let round_timeout = cfg.round_timeout;
            let schema = schema.clone();
            handles.push(scope.spawn(move |_| {
                let contain_barrier = Arc::clone(&barrier);
                let contain_flags = Arc::clone(&flags);
                let contain_progress = Arc::clone(&progress);
                let contain_async = Arc::clone(&async_control);
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
                    let mut store = TripleStore::new();
                    store.extend(schema);
                    store.extend(base);
                    let ctx = WorkerCtx {
                        id,
                        k: cfg.k,
                        store,
                        reasoner: Reasoner::new(rules, materialization),
                        routing,
                        comm,
                        barrier,
                        total_sent,
                        flags,
                        round_timeout,
                        progress,
                    };
                    match rounds_mode {
                        RoundMode::Barrier => run_worker(ctx),
                        RoundMode::Async => run_worker_async(ctx, async_control),
                    }
                }));
                match outcome {
                    Ok(r) => r,
                    Err(payload) => {
                        // Containment: raise the flag *before* defecting,
                        // then release anyone the dead worker would have
                        // kept waiting (see worker.rs module docs).
                        contain_flags.fail();
                        contain_barrier.defect();
                        contain_async
                            .exit
                            .store(true, Ordering::SeqCst);
                        Err(WorkerError::Panicked {
                            worker: id,
                            round: contain_progress.load(Ordering::Relaxed),
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            }));
        }
        for (id, h) in handles.into_iter().enumerate() {
            results[id] = Some(h.join().unwrap_or_else(|_| {
                Err(WorkerError::Panicked {
                    worker: id,
                    round: 0,
                    message: "worker thread died outside containment".to_string(),
                })
            }));
        }
    })
    .is_ok();
    if !scope_ok {
        return Err(RunError::Workers {
            errors: vec![WorkerError::Panicked {
                worker: 0,
                round: 0,
                message: "worker scope tore down abnormally".to_string(),
            }],
        });
    }
    let host_parallel_time = t_par.elapsed();

    // Aggregate: union the surviving partitions back into the master
    // graph; collect structured errors for the rest.
    let rec = obs::global();
    let mut lane = rec.track("master");
    let agg_span = lane.begin(obs::Phase::Aggregate, obs::NO_ROUND);
    let t_agg = Instant::now();
    let mut worker_stats = Vec::with_capacity(cfg.k);
    let mut output_sizes = Vec::with_capacity(cfg.k);
    let mut worker_errors: Vec<WorkerError> = Vec::new();
    for (id, r) in results.into_iter().enumerate() {
        match r {
            Some(Ok((store, stats))) => {
                output_sizes.push(store.len());
                graph.store.union_with(&store);
                worker_stats.push(stats);
            }
            Some(Err(e)) => {
                worker_errors.push(e);
                worker_stats.push(WorkerStats {
                    id,
                    ..WorkerStats::default()
                });
            }
            None => {
                worker_errors.push(WorkerError::Panicked {
                    worker: id,
                    round: 0,
                    message: "worker was never spawned".to_string(),
                });
                worker_stats.push(WorkerStats {
                    id,
                    ..WorkerStats::default()
                });
            }
        }
    }

    // Recovery. The master graph still holds every base and schema
    // triple (union_with only ever adds), and each surviving store is a
    // subset of the closure, so a serial re-close over the union is
    // exactly the serial closure. Guaranteed for data partitioning,
    // where every worker ran the complete rule-base; rule/hybrid losses
    // are reported instead.
    let mut recovered = false;
    if !worker_errors.is_empty() {
        if !recoverable {
            return Err(RunError::Workers {
                errors: worker_errors,
            });
        }
        let rec_span = lane.begin(obs::Phase::Recovery, obs::NO_ROUND);
        reclose_serial(graph, cfg, &all_rules);
        lane.end(rec_span);
        recovered = true;
    }
    let aggregation = t_agg.elapsed();
    lane.end(agg_span);

    // Reconstruct the cluster's wall-clock. Barrier mode: replay the
    // synchronous schedule (per-round maxima + barrier slack). Async mode:
    // no barriers, so the makespan is the busiest worker's CPU and sync
    // is zero — exactly the gain §VI-B predicts.
    let (parallel_time, sim_sync) = match cfg.rounds {
        RoundMode::Barrier => crate::stats::simulate_rounds(&worker_stats),
        RoundMode::Async => {
            let makespan = worker_stats
                .iter()
                .map(|w| w.reason_time + w.io_time)
                .max()
                .unwrap_or_default();
            (makespan, vec![Duration::ZERO; worker_stats.len()])
        }
    };
    for (w, s) in worker_stats.iter_mut().zip(sim_sync) {
        w.sync_time = s;
    }

    let closure_size = graph.len();
    Ok(RunReport {
        k: cfg.k,
        breakdown: PhaseBreakdown::from_workers(&worker_stats, aggregation),
        workers: worker_stats,
        partition_time,
        parallel_time,
        host_parallel_time,
        total_time: start_total.elapsed(),
        derived: closure_size - before_len,
        closure_size,
        output_replication: or_excess(&output_sizes, closure_size),
        partition_quality,
        edge_cut,
        worker_errors,
        recovered,
        wire: None,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::comm::{CommMode, WireFormat};
    use crate::fault::{FaultKind, FaultPlan};
    use owlpar_datagen::{generate_lubm, generate_mdc, generate_uobm, LubmConfig, MdcConfig, UobmConfig};

    fn serial_closure(mut g: Graph) -> (u64, usize) {
        run_serial(&mut g, MaterializationStrategy::ForwardSemiNaive);
        (g.term_fingerprint(), g.len())
    }

    fn assert_parallel_matches_serial(g0: &Graph, cfg: &ParallelConfig) {
        let (want_fp, want_len) = serial_closure(g0.clone());
        let mut g = g0.clone();
        let report = run_parallel(&mut g, cfg).expect("run succeeds");
        assert_eq!(g.len(), want_len, "closure size mismatch ({cfg:?})");
        assert_eq!(g.term_fingerprint(), want_fp, "closure mismatch ({cfg:?})");
        assert!(report.derived > 0);
        assert_eq!(report.k, cfg.k);
    }

    #[test]
    fn lubm_data_graph_partitioning_all_k() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        for k in [1, 2, 4] {
            let cfg = ParallelConfig {
                k,
                strategy: PartitioningStrategy::data_graph(),
                ..ParallelConfig::default()
            }
            .forward();
            assert_parallel_matches_serial(&g0, &cfg);
        }
    }

    #[test]
    fn lubm_data_hash_partitioning() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let cfg = ParallelConfig {
            k: 3,
            strategy: PartitioningStrategy::data_hash(),
            ..ParallelConfig::default()
        }
        .forward();
        assert_parallel_matches_serial(&g0, &cfg);
    }

    #[test]
    fn lubm_data_domain_partitioning() {
        let g0 = generate_lubm(&LubmConfig::mini(3));
        let cfg = ParallelConfig {
            k: 3,
            strategy: PartitioningStrategy::data_domain(),
            ..ParallelConfig::default()
        }
        .forward();
        assert_parallel_matches_serial(&g0, &cfg);
    }

    #[test]
    fn lubm_rule_partitioning() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        for weighted in [false, true] {
            let cfg = ParallelConfig {
                k: 3,
                strategy: PartitioningStrategy::Rule { weighted },
                ..ParallelConfig::default()
            }
            .forward();
            assert_parallel_matches_serial(&g0, &cfg);
        }
    }

    #[test]
    fn mdc_transitive_chains_across_partitions() {
        let g0 = generate_mdc(&MdcConfig::mini());
        let cfg = ParallelConfig {
            k: 4,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward();
        assert_parallel_matches_serial(&g0, &cfg);
    }

    #[test]
    fn uobm_dense_graph_partitioning() {
        let g0 = generate_uobm(&UobmConfig::mini(2));
        let cfg = ParallelConfig {
            k: 2,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward();
        assert_parallel_matches_serial(&g0, &cfg);
    }

    #[test]
    fn backward_engine_parallel_matches_serial() {
        let g0 = generate_mdc(&MdcConfig::mini());
        let cfg = ParallelConfig {
            k: 2,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }; // default = backward per-resource
        assert_parallel_matches_serial(&g0, &cfg);
    }

    #[test]
    fn shared_file_comm_matches_channel() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        for format in [WireFormat::Binary, WireFormat::NTriples] {
            let cfg = ParallelConfig {
                k: 3,
                comm: CommMode::SharedFile { dir: None, format },
                ..ParallelConfig::default()
            }
            .forward();
            assert_parallel_matches_serial(&g0, &cfg);
        }
    }

    #[test]
    fn report_carries_metrics() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let mut g = g0.clone();
        let report = run_parallel(
            &mut g,
            &ParallelConfig {
                k: 4,
                ..ParallelConfig::default()
            }
            .forward(),
        )
        .expect("run succeeds");
        assert_eq!(report.workers.len(), 4);
        assert!(report.max_rounds() >= 1);
        assert!(report.closure_size > g0.len());
        assert_eq!(report.total_skipped(), 0);
        let line = report.summary();
        assert!(line.contains("0 message(s) skipped"), "summary surfaces skipped: {line}");
        assert!(line.contains("4 worker(s)"));
        let q = report.partition_quality.expect("data strategy has quality");
        assert_eq!(q.node_counts.len(), 4);
        assert!(q.ir >= 1.0);
        assert!(report.edge_cut.is_some());
        assert!(report.output_replication >= 0.0);
        assert!(report.worker_errors.is_empty());
        assert!(!report.recovered);
    }

    #[test]
    fn hybrid_partitioning_matches_serial() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        for (k, groups) in [(4, 2), (6, 3), (2, 1), (3, 3)] {
            let cfg = ParallelConfig {
                k,
                strategy: PartitioningStrategy::Hybrid {
                    rule_groups: groups,
                },
                ..ParallelConfig::default()
            }
            .forward();
            assert_parallel_matches_serial(&g0, &cfg);
        }
    }

    #[test]
    fn hybrid_on_transitive_heavy_mdc() {
        let g0 = generate_mdc(&MdcConfig::mini());
        let cfg = ParallelConfig {
            k: 4,
            strategy: PartitioningStrategy::Hybrid { rule_groups: 2 },
            ..ParallelConfig::default()
        }
        .forward();
        assert_parallel_matches_serial(&g0, &cfg);
    }

    #[test]
    fn hybrid_rejects_indivisible_k() {
        let mut g = generate_lubm(&LubmConfig::mini(1));
        let err = run_parallel(
            &mut g,
            &ParallelConfig {
                k: 5,
                strategy: PartitioningStrategy::Hybrid { rule_groups: 2 },
                ..ParallelConfig::default()
            }
            .forward(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Config { .. }));
        assert!(err.to_string().contains("must divide"));
    }

    #[test]
    fn zero_k_is_config_error() {
        let mut g = generate_lubm(&LubmConfig::mini(1));
        let err = run_parallel(&mut g, &ParallelConfig::default().with_k(0)).unwrap_err();
        assert!(matches!(err, RunError::Config { .. }));
    }

    #[test]
    fn async_over_files_is_config_error() {
        let mut g = generate_lubm(&LubmConfig::mini(1));
        let err = run_parallel(
            &mut g,
            &ParallelConfig {
                rounds: RoundMode::Async,
                comm: CommMode::SharedFile {
                    dir: None,
                    format: WireFormat::Binary,
                },
                ..ParallelConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Config { .. }));
    }

    #[test]
    fn async_mode_matches_serial_closure() {
        use crate::config::RoundMode;
        let g0 = generate_lubm(&LubmConfig::mini(2));
        for k in [1, 2, 4] {
            let cfg = ParallelConfig {
                k,
                rounds: RoundMode::Async,
                ..ParallelConfig::default()
            }
            .forward();
            assert_parallel_matches_serial(&g0, &cfg);
        }
    }

    #[test]
    fn async_mode_reports_zero_sync() {
        use crate::config::RoundMode;
        let mut g = generate_mdc(&MdcConfig::mini());
        let report = run_parallel(
            &mut g,
            &ParallelConfig {
                k: 3,
                rounds: RoundMode::Async,
                ..ParallelConfig::default()
            }
            .forward(),
        )
        .expect("run succeeds");
        assert!(report.workers.iter().all(|w| w.sync_time == Duration::ZERO));
        assert!(report.parallel_time > Duration::ZERO);
    }

    #[test]
    fn k1_equals_serial_with_no_comm() {
        let g0 = generate_lubm(&LubmConfig::mini(1));
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &ParallelConfig::default().with_k(1).forward())
            .expect("run succeeds");
        assert_eq!(report.workers[0].sent, 0);
        assert_eq!(report.workers[0].received, 0);
        assert_eq!(report.max_rounds(), 1);
        let (fp, len) = serial_closure(g0);
        assert_eq!(g.len(), len);
        assert_eq!(g.term_fingerprint(), fp);
    }

    #[test]
    fn worker_panic_is_contained_and_recovered() {
        // Data partitioning + AdoptAndReclose (the default): a worker
        // panicking at round 1 must yield a *recovered* run whose
        // closure equals the serial closure.
        let g0 = generate_mdc(&MdcConfig::mini());
        let (want_fp, want_len) = serial_closure(g0.clone());
        let mut g = g0.clone();
        let cfg = ParallelConfig {
            k: 4,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward()
        .with_round_timeout(Duration::from_secs(300))
        .with_faults(FaultPlan::new().with(1, 2, FaultKind::Panic));
        let report = run_parallel(&mut g, &cfg).expect("recovered run succeeds");
        assert!(report.recovered, "panic at round 1 triggers recovery");
        assert!(report
            .worker_errors
            .iter()
            .any(|e| matches!(e, WorkerError::Panicked { worker: 2, .. })));
        assert_eq!(report.workers.len(), 4, "dead worker keeps its slot");
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
    }

    /// A LUBM graph carrying a 3-cycle over a fresh predicate, plus the
    /// multi-join rule `(?a p ?b)(?b p ?c)(?c p ?a) -> (?a q ?c)` that
    /// fires on it. The rule is NOT single-join, so the compiled-rulebase
    /// safety proof does not cover it.
    fn graph_with_multi_join_rule() -> (Graph, owlpar_datalog::Rule) {
        use owlpar_datalog::ast::build::{atom, c, v};
        let mut g = generate_lubm(&LubmConfig::mini(1));
        g.insert_iris("http://x/a", "http://x/p", "http://x/b");
        g.insert_iris("http://x/b", "http://x/p", "http://x/c");
        g.insert_iris("http://x/c", "http://x/p", "http://x/a");
        let p = g.intern(Term::iri("http://x/p"));
        let q = g.intern(Term::iri("http://x/q"));
        let rule = owlpar_datalog::Rule::new(
            "tri",
            atom(v(0), c(q), v(2)),
            vec![
                atom(v(0), c(p), v(1)),
                atom(v(1), c(p), v(2)),
                atom(v(2), c(p), v(0)),
            ],
        )
        .expect("tri rule is well-formed");
        (g, rule)
    }

    /// Serial oracle for the effective (compiled + extra) rule-base.
    fn serial_closure_with_extra(g0: &Graph, extra: &owlpar_datalog::Rule) -> (u64, usize) {
        let mut g = g0.clone();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        let mut rules = hr.rules().to_vec();
        rules.push(extra.clone());
        Reasoner::new(rules, MaterializationStrategy::ForwardSemiNaive)
            .materialize(&mut g.store);
        (g.term_fingerprint(), g.len())
    }

    #[test]
    fn lint_gate_refuses_multi_join_rule_under_data_partitioning() {
        let (g0, rule) = graph_with_multi_join_rule();
        let mut g = g0.clone();
        let before = g.len();
        let cfg = ParallelConfig {
            k: 3,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward()
        .with_extra_rules(vec![rule]);
        let err = run_parallel(&mut g, &cfg).unwrap_err();
        let RunError::Lint { report } = err else {
            panic!("expected Lint error, got {err}");
        };
        assert!(report.has_deny());
        assert_eq!(report.unsafe_rule_names(), vec!["tri".to_string()]);
        assert!(report
            .deny_findings()
            .any(|d| d.code == owlpar_lint::LintCode::NonSingleJoin));
        // Refused before any worker spawned: the graph is untouched.
        assert_eq!(g.len(), before, "no partial closure on refusal");
    }

    #[test]
    fn lint_gate_replication_fallback_matches_serial() {
        let (g0, rule) = graph_with_multi_join_rule();
        let (want_fp, want_len) = serial_closure_with_extra(&g0, &rule);
        let mut g = g0.clone();
        let cfg = ParallelConfig {
            k: 3,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward()
        .with_extra_rules(vec![rule])
        .with_unsafe_rules(UnsafeRulePolicy::ReplicateData);
        let report = run_parallel(&mut g, &cfg).expect("fallback run succeeds");
        assert_eq!(report.k, 3);
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
    }

    #[test]
    fn multi_join_extra_rule_is_fine_under_rule_partitioning() {
        let (g0, rule) = graph_with_multi_join_rule();
        let (want_fp, want_len) = serial_closure_with_extra(&g0, &rule);
        let mut g = g0.clone();
        let cfg = ParallelConfig {
            k: 3,
            strategy: PartitioningStrategy::rule(),
            ..ParallelConfig::default()
        }
        .forward()
        .with_extra_rules(vec![rule]);
        let report = run_parallel(&mut g, &cfg).expect("rule partitioning accepts any join shape");
        assert_eq!(report.k, 3);
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
    }

    #[test]
    fn broken_extra_rule_refuses_even_with_replication_fallback() {
        use owlpar_datalog::ast::build::{atom, c, v};
        let mut g = generate_lubm(&LubmConfig::mini(1));
        let p = g.intern(Term::iri("http://x/p"));
        // Head variable ?1 never bound in the body: not range-restricted.
        let broken = owlpar_datalog::Rule {
            name: "broken".to_string(),
            head: atom(v(0), c(p), v(1)),
            body: vec![atom(v(0), c(p), v(0))],
            var_count: 2,
        };
        let cfg = ParallelConfig::default()
            .forward()
            .with_extra_rules(vec![broken])
            .with_unsafe_rules(UnsafeRulePolicy::ReplicateData);
        let err = run_parallel(&mut g, &cfg).unwrap_err();
        let RunError::Lint { report } = err else {
            panic!("expected Lint error, got {err}");
        };
        assert!(report
            .deny_findings()
            .any(|d| d.code == owlpar_lint::LintCode::NotRangeRestricted));
    }

    #[test]
    fn auto_strategy_resolves_and_matches_serial() {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        for k in [2, 4] {
            let cfg = ParallelConfig {
                k,
                strategy: PartitioningStrategy::Auto,
                ..ParallelConfig::default()
            }
            .forward();
            assert_parallel_matches_serial(&g0, &cfg);
        }
    }

    #[test]
    fn auto_attaches_the_argmin_plan_report() {
        let mut g = generate_lubm(&LubmConfig::mini(2));
        let cfg = ParallelConfig {
            k: 2,
            strategy: PartitioningStrategy::Auto,
            ..ParallelConfig::default()
        }
        .forward();
        let plan = prepare_run(&mut g, &cfg).expect("auto plan prepares");
        let report = plan.analysis.expect("auto runs carry the analyzer report");
        assert!(!report.has_deny());
        assert!(report.total_cost.is_finite());
        // The resolved strategy is concrete and matches the report.
        assert!(!matches!(plan.strategy, PartitioningStrategy::Auto));
        assert_eq!(plan.strategy.label(), report.strategy);
        // Rule partitioning ships the whole base k times; on LUBM the
        // analyzer must prefer the data split.
        assert_eq!(report.strategy, "data");
    }

    #[test]
    fn explicit_strategies_carry_no_analysis() {
        let mut g = generate_lubm(&LubmConfig::mini(1));
        let plan = prepare_run(&mut g, &ParallelConfig::default().forward())
            .expect("plan prepares");
        assert!(plan.analysis.is_none());
    }

    #[test]
    fn worker_panic_without_recovery_is_structured_error() {
        let mut g = generate_mdc(&MdcConfig::mini());
        let cfg = ParallelConfig {
            k: 4,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward()
        .with_round_timeout(Duration::from_secs(300))
        .with_recovery(FaultRecovery::Fail)
        .with_faults(FaultPlan::new().with(1, 1, FaultKind::Panic));
        let err = run_parallel(&mut g, &cfg).unwrap_err();
        match err {
            RunError::Workers { errors } => {
                assert!(errors.iter().any(|e| matches!(
                    e,
                    WorkerError::Panicked {
                        worker: 1,
                        round: 1,
                        ..
                    }
                )));
            }
            other => panic!("expected Workers error, got {other}"),
        }
    }
}
