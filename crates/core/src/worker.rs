//! The per-node loop of Algorithm 3.
//!
//! Each worker wraps a serial reasoner over its private store and runs
//! barrier-synchronized rounds: close the local store, route new
//! derivations to the partitions that may need them, exchange, repeat.
//! Termination: a round in which *no* worker sent anything (detected via
//! a shared cumulative send counter read between the two round barriers,
//! so every worker reaches the same verdict in the same round).
//!
//! # Fault containment
//!
//! The loop returns `Result` instead of panicking. A worker that fails —
//! persistent IO error, barrier timeout, contained panic — marks the
//! shared [`RunFlags`] as failed **before** defecting from the
//! [`RoundBarrier`], so by the time the barrier membership shrinks the
//! failure is already visible, and survivors drain with their
//! (monotonically correct, partial) stores intact for the master's
//! recovery pass. Sends to an already-dead peer come back `Disconnected`
//! and are skipped — the run's outcome is decided by the dead worker's
//! own structured error, not by a cascade.
//!
//! The failure flag is racy by nature: it can be raised between a
//! barrier's release and a survivor's flag check, so two survivors may
//! observe it one round apart (one breaks now, the other only after
//! another barrier crossing). The liveness rule that makes this safe is
//! that **every** exit from the round loop — failure drain, normal
//! quiescence, or structured error — defects from the barrier, so a
//! worker that leaves can never strand a slower peer mid-round; the
//! peer's next barrier releases against the shrunken membership and its
//! own flag check ends its loop.

use crate::barrier::RoundBarrier;
use crate::comm::WorkerComm;
use crate::cputime::CpuTimer;
use crate::error::{CommError, WorkerError};
use crate::stats::WorkerStats;
use owlpar_datalog::{Reasoner, Rule};
use owlpar_obs::{Metric, Phase};
use owlpar_partition::RulePartitions;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{NodeId, Triple, TripleStore};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a worker decides where a freshly derived triple must travel.
pub enum Routing {
    /// Data partitioning: a derived triple belongs on the owner of its
    /// subject and the owner of its object (the partition table of
    /// Algorithm 1).
    Data {
        /// The partition table.
        owner: Arc<FxHashMap<NodeId, u32>>,
    },
    /// Rule partitioning: a derived triple travels to every partition
    /// holding a rule whose body might consume it.
    Rule {
        /// The rule-base split of Algorithm 2.
        partitions: Arc<RulePartitions>,
        /// The complete rule-base (for body matching).
        all_rules: Arc<Vec<Rule>>,
    },
    /// Hybrid partitioning (the paper's §VII future work, after Shao et
    /// al.): rules split into groups, data split into shards; worker
    /// `g·d + j` holds rule group `g` over data shard `j`. A derived
    /// triple goes to every interested rule group × both owner shards.
    Hybrid {
        /// Data-ownership table (shard ids `0..d`).
        owner: Arc<FxHashMap<NodeId, u32>>,
        /// Rule grouping (group ids `0..g`).
        groups: Arc<RulePartitions>,
        /// The complete rule-base.
        all_rules: Arc<Vec<Rule>>,
        /// Number of data shards (`d`).
        data_shards: u32,
    },
}

impl Routing {
    /// Destinations of `t` other than `me` (public so out-of-process
    /// worker loops — the `owlpar-net` cluster runtime — route exactly
    /// like the in-process loop).
    pub fn destinations(&self, t: &Triple, me: u32, out: &mut Vec<u32>) {
        out.clear();
        match self {
            Routing::Data { owner } => {
                let a = owner.get(&t.s).copied();
                let b = owner.get(&t.o).copied();
                if let Some(x) = a {
                    if x != me {
                        out.push(x);
                    }
                }
                if let Some(y) = b {
                    if y != me && a != Some(y) {
                        out.push(y);
                    }
                }
            }
            Routing::Rule {
                partitions,
                all_rules,
            } => {
                out.extend(partitions.consumers(all_rules, t, me));
            }
            Routing::Hybrid {
                owner,
                groups,
                all_rules,
                data_shards,
            } => {
                let a = owner.get(&t.s).copied();
                let b = owner.get(&t.o).copied();
                for g in groups.interested_groups(all_rules, t) {
                    for shard in [a, b].into_iter().flatten() {
                        let widx = g * data_shards + shard;
                        if widx != me && !out.contains(&widx) {
                            out.push(widx);
                        }
                    }
                }
            }
        }
    }
}

/// Run-wide failure flag shared by all workers and the master.
///
/// Set by a failing worker *before* it defects from the barrier, so the
/// barrier's release order guarantees every survivor observes it at the
/// same round's exit check.
#[derive(Default)]
pub struct RunFlags {
    failed: AtomicBool,
}

impl RunFlags {
    /// Fresh, un-failed flags.
    pub fn new() -> Self {
        RunFlags::default()
    }

    /// Mark the run as having lost a worker.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
    }

    /// Has any worker been lost?
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }
}

/// Shared state for distributed termination detection in the
/// asynchronous mode: exit when every worker is idle and every sent
/// triple has been processed.
pub struct AsyncControl {
    /// Cumulative triples sent (incremented *before* the send).
    pub total_sent: AtomicU64,
    /// Cumulative received triples fully processed.
    pub total_done: AtomicU64,
    /// Workers currently idle (inbox empty, nothing to derive).
    pub idle: std::sync::atomic::AtomicUsize,
    /// Latched once global quiescence is observed (or a worker is lost —
    /// the async mode has no barrier, so the exit flag doubles as its
    /// failure broadcast).
    pub exit: std::sync::atomic::AtomicBool,
}

impl Default for AsyncControl {
    fn default() -> Self {
        AsyncControl {
            total_sent: AtomicU64::new(0),
            total_done: AtomicU64::new(0),
            idle: std::sync::atomic::AtomicUsize::new(0),
            exit: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

/// Everything a worker thread needs.
pub struct WorkerCtx {
    /// Worker index (== partition id).
    pub id: usize,
    /// Total number of workers.
    pub k: usize,
    /// Private store, pre-loaded with the schema and this partition's
    /// base tuples.
    pub store: TripleStore,
    /// The wrapped serial reasoner (complete rule-base for data
    /// partitioning; this partition's subset for rule partitioning).
    pub reasoner: Reasoner,
    /// Triple routing policy.
    pub routing: Routing,
    /// Communication endpoint.
    pub comm: WorkerComm,
    /// Round barrier shared by all workers (timeout- and
    /// defection-aware).
    pub barrier: Arc<RoundBarrier>,
    /// Cumulative count of triples sent by anyone (termination detector).
    pub total_sent: Arc<AtomicU64>,
    /// Run-wide failure flag.
    pub flags: Arc<RunFlags>,
    /// Patience at each barrier crossing.
    pub round_timeout: Duration,
    /// Last round this worker entered — read by the master's panic
    /// containment to report *where* a worker died.
    pub progress: Arc<AtomicUsize>,
}

/// Record the failure, leave the barrier, and hand back the error.
/// The flag **must** be set before the defection — see the module docs.
fn abort(flags: &RunFlags, barrier: &RoundBarrier, err: WorkerError) -> WorkerError {
    flags.fail();
    barrier.defect();
    err
}

/// Cross the barrier or fail with a structured timeout.
fn cross_barrier(ctx: &WorkerCtx, round: usize) -> Result<(), WorkerError> {
    match ctx.barrier.wait(ctx.round_timeout) {
        Ok(()) => Ok(()),
        Err(t) => Err(abort(
            &ctx.flags,
            &ctx.barrier,
            WorkerError::BarrierTimeout {
                worker: ctx.id,
                round,
                waited: t.waited,
            },
        )),
    }
}

/// Run the worker to quiescence. Returns the final local store and stats,
/// or a structured error if this worker dropped out of the run.
pub fn run_worker(mut ctx: WorkerCtx) -> Result<(TripleStore, WorkerStats), WorkerError> {
    let mut stats = WorkerStats {
        id: ctx.id,
        ..WorkerStats::default()
    };
    let me = ctx.id as u32;
    // Ambient tracing lane for this worker (one branch per span when the
    // recorder is disabled; flushed on drop, including error exits).
    let rec = owlpar_obs::global();
    let mut lane = rec.track(&format!("worker {}", ctx.id));
    // CPU charged to the round in progress (reason + io); pushed at each
    // barrier so the master can replay the synchronous schedule.
    let mut round_cpu = Duration::ZERO;

    // Round 0 closes the base tuples; later rounds close received deltas.
    let span = lane.begin(Phase::Join, owlpar_obs::NO_ROUND);
    let t = CpuTimer::start();
    let base: Vec<Triple> = ctx.store.iter().copied().collect();
    let mut derived = ctx.reasoner.materialize_delta(&mut ctx.store, base);
    let dt = t.elapsed();
    lane.end(span);
    stats.reason_time += dt;
    round_cpu += dt;
    stats.derived += derived.len();

    let mut last_total = 0u64;
    let mut dests: Vec<u32> = Vec::with_capacity(2);
    loop {
        stats.rounds += 1;
        let round = ctx.comm.round();
        ctx.progress.store(round, Ordering::Relaxed);
        let trace_round = u32::try_from(round).unwrap_or(owlpar_obs::NO_ROUND);
        let round_span = lane.begin(Phase::Round, trace_round);

        // injected faults pinned to the start of this round
        if ctx.comm.panic_scheduled(round) {
            ctx.comm.fire_scheduled_panic(round); // contained by the master
        }
        if let Some(d) = ctx.comm.scheduled_delay(round) {
            std::thread::sleep(d);
        }

        // route + send
        let span = lane.begin(Phase::Exchange, trace_round);
        let t = CpuTimer::start();
        let mut outbox: Vec<Vec<Triple>> = vec![Vec::new(); ctx.k];
        for tr in &derived {
            ctx.routing.destinations(tr, me, &mut dests);
            for &d in &dests {
                outbox[d as usize].push(*tr);
            }
        }
        let mut sent_now = 0u64;
        for (to, batch) in outbox.iter().enumerate() {
            match ctx.comm.send(to, batch) {
                Ok(()) => sent_now += batch.len() as u64,
                // A hung-up peer is already dead; its own structured
                // error decides the run. Dropping the message is safe:
                // recovery re-closes from the surviving stores.
                Err(CommError::Disconnected { .. }) => {}
                Err(source) => {
                    return Err(abort(
                        &ctx.flags,
                        &ctx.barrier,
                        WorkerError::Comm {
                            worker: ctx.id,
                            source,
                        },
                    ));
                }
            }
        }
        stats.sent += sent_now as usize;
        ctx.total_sent.fetch_add(sent_now, Ordering::SeqCst);
        let dt = t.elapsed();
        lane.end(span);
        lane.count(Phase::Exchange, trace_round, Metric::Sent, sent_now);
        stats.io_time += dt;
        round_cpu += dt;

        // barrier A closes the round's send window — and the round's CPU
        // account (sync time is reconstructed by the master afterwards)
        stats.round_cpu.push(round_cpu);
        round_cpu = Duration::ZERO;
        let span = lane.begin(Phase::BarrierWait, trace_round);
        cross_barrier(&ctx, round)?;
        lane.end(span);

        // receive (charged to the next round)
        let span = lane.begin(Phase::Collect, trace_round);
        let t = CpuTimer::start();
        let received = match ctx.comm.collect() {
            Ok(r) => r,
            Err(source) => {
                return Err(abort(
                    &ctx.flags,
                    &ctx.barrier,
                    WorkerError::Comm {
                        worker: ctx.id,
                        source,
                    },
                ));
            }
        };
        stats.received += received.len();
        let dt = t.elapsed();
        lane.end(span);
        stats.io_time += dt;
        round_cpu += dt;

        // read the verdict inside the [A, B] window, then barrier B
        let now_total = ctx.total_sent.load(Ordering::SeqCst);
        let span = lane.begin(Phase::BarrierWait, trace_round);
        cross_barrier(&ctx, round)?;
        lane.end(span);
        if ctx.flags.failed() {
            lane.end(round_span);
            break; // a worker was lost: drain cleanly, in the same round
                   // as every other survivor (see module docs)
        }
        if now_total == last_total {
            lane.end(round_span);
            break; // nobody moved a triple this round: global quiescence
        }
        last_total = now_total;

        // absorb + incremental closure
        let span = lane.begin(Phase::Join, trace_round);
        let t = CpuTimer::start();
        let fresh: Vec<Triple> = received
            .into_iter()
            .filter(|tr| ctx.store.insert(*tr))
            .collect();
        derived = ctx.reasoner.materialize_delta(&mut ctx.store, fresh);
        let dt = t.elapsed();
        lane.end(span);
        stats.reason_time += dt;
        round_cpu += dt;
        stats.derived += derived.len();
        lane.end(round_span);
    }
    // Leaving the run — on drain *or* quiescence — must shrink the
    // barrier membership: a peer that raced past our flag check may
    // already be waiting on the next barrier, and without this defection
    // it would stall there until its round timeout (see module docs).
    ctx.barrier.defect();
    if round_cpu > Duration::ZERO {
        stats.round_cpu.push(round_cpu); // trailing collect work
    }

    stats.skipped = ctx.comm.skipped().len();
    stats.io_retries = ctx.comm.io_retries as usize;
    stats.output_size = ctx.store.len();
    Ok((ctx.store, stats))
}

/// The asynchronous variant of Algorithm 3 proposed in §VI-B: no round
/// barrier — a worker consumes whatever has arrived and keeps deriving.
/// Termination: every worker idle ∧ every sent triple processed
/// (`AsyncControl`). Requires the channel transport.
///
/// With no barrier to defect from, a failing worker broadcasts through
/// `AsyncControl::exit` instead, so no survivor spins forever waiting
/// for a quiescence that can no longer be reached.
pub fn run_worker_async(
    mut ctx: WorkerCtx,
    control: Arc<AsyncControl>,
) -> Result<(TripleStore, WorkerStats), WorkerError> {
    use std::sync::atomic::Ordering::SeqCst;
    let mut stats = WorkerStats {
        id: ctx.id,
        ..WorkerStats::default()
    };
    let me = ctx.id as u32;
    let mut burst_cpu = Duration::ZERO;

    let t = CpuTimer::start();
    let base: Vec<Triple> = ctx.store.iter().copied().collect();
    let mut derived = ctx.reasoner.materialize_delta(&mut ctx.store, base);
    let dt = t.elapsed();
    stats.reason_time += dt;
    burst_cpu += dt;
    stats.derived += derived.len();

    let mut dests: Vec<u32> = Vec::with_capacity(2);
    'outer: loop {
        stats.rounds += 1; // one burst = one "round" for accounting
        let burst = stats.rounds - 1;
        ctx.progress.store(burst, Ordering::Relaxed);
        if ctx.comm.panic_scheduled(burst) {
            ctx.comm.fire_scheduled_panic(burst); // contained by the master
        }
        if let Some(d) = ctx.comm.scheduled_delay(burst) {
            std::thread::sleep(d);
        }

        // route + send whatever the last burst derived
        let t = CpuTimer::start();
        let mut outbox: Vec<Vec<Triple>> = vec![Vec::new(); ctx.k];
        for tr in &derived {
            ctx.routing.destinations(tr, me, &mut dests);
            for &d in &dests {
                outbox[d as usize].push(*tr);
            }
        }
        let sent_now: u64 = outbox.iter().map(|b| b.len() as u64).sum();
        control.total_sent.fetch_add(sent_now, SeqCst);
        for (to, batch) in outbox.iter().enumerate() {
            match ctx.comm.send(to, batch) {
                Ok(()) => {}
                Err(CommError::Disconnected { .. }) => {
                    // dead peer; account its share as done so the in-flight
                    // counter can still reach quiescence
                    control.total_done.fetch_add(batch.len() as u64, SeqCst);
                }
                Err(source) => {
                    ctx.flags.fail();
                    control.exit.store(true, SeqCst);
                    return Err(WorkerError::Comm {
                        worker: ctx.id,
                        source,
                    });
                }
            }
        }
        stats.sent += sent_now as usize;
        let dt = t.elapsed();
        stats.io_time += dt;
        burst_cpu += dt;
        stats.round_cpu.push(burst_cpu);
        burst_cpu = Duration::ZERO;

        // grab whatever has arrived; if nothing, go idle and watch for
        // quiescence
        let t = CpuTimer::start();
        let mut received = match ctx.comm.try_collect() {
            Ok(r) => r,
            Err(source) => {
                ctx.flags.fail();
                control.exit.store(true, SeqCst);
                return Err(WorkerError::Comm {
                    worker: ctx.id,
                    source,
                });
            }
        };
        let dt = t.elapsed();
        stats.io_time += dt;
        burst_cpu += dt;
        if received.is_empty() {
            control.idle.fetch_add(1, SeqCst);
            loop {
                if control.exit.load(SeqCst) {
                    break 'outer;
                }
                received = match ctx.comm.try_collect() {
                    Ok(r) => r,
                    Err(source) => {
                        ctx.flags.fail();
                        control.exit.store(true, SeqCst);
                        return Err(WorkerError::Comm {
                            worker: ctx.id,
                            source,
                        });
                    }
                };
                if !received.is_empty() {
                    control.idle.fetch_sub(1, SeqCst);
                    break;
                }
                // all idle and nothing in flight ⇒ latch the exit flag
                if control.idle.load(SeqCst) == ctx.k
                    && control.total_sent.load(SeqCst) == control.total_done.load(SeqCst)
                {
                    control.exit.store(true, SeqCst);
                    break 'outer;
                }
                std::thread::yield_now();
            }
        }

        // absorb + incremental closure
        let t = CpuTimer::start();
        let n_received = received.len() as u64;
        stats.received += received.len();
        let fresh: Vec<Triple> = received
            .into_iter()
            .filter(|tr| ctx.store.insert(*tr))
            .collect();
        derived = ctx.reasoner.materialize_delta(&mut ctx.store, fresh);
        control.total_done.fetch_add(n_received, SeqCst);
        let dt = t.elapsed();
        stats.reason_time += dt;
        burst_cpu += dt;
        stats.derived += derived.len();
    }
    if burst_cpu > Duration::ZERO {
        stats.round_cpu.push(burst_cpu);
    }

    stats.skipped = ctx.comm.skipped().len();
    stats.io_retries = ctx.comm.io_retries as usize;
    stats.output_size = ctx.store.len();
    Ok((ctx.store, stats))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_datalog::ast::build::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn data_routing_dedupes_same_owner() {
        let mut owner = FxHashMap::default();
        owner.insert(NodeId(1), 2u32);
        owner.insert(NodeId(2), 2u32);
        let r = Routing::Data {
            owner: Arc::new(owner),
        };
        let mut out = Vec::new();
        r.destinations(&t(1, 9, 2), 0, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn data_routing_skips_self() {
        let mut owner = FxHashMap::default();
        owner.insert(NodeId(1), 0u32);
        owner.insert(NodeId(2), 1u32);
        let r = Routing::Data {
            owner: Arc::new(owner),
        };
        let mut out = Vec::new();
        r.destinations(&t(1, 9, 2), 0, &mut out);
        assert_eq!(out, vec![1]);
        r.destinations(&t(1, 9, 2), 1, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn data_routing_ignores_unowned_endpoints() {
        let mut owner = FxHashMap::default();
        owner.insert(NodeId(1), 1u32);
        let r = Routing::Data {
            owner: Arc::new(owner),
        };
        let mut out = Vec::new();
        // object 999 (a class) has no owner
        r.destinations(&t(1, 9, 999), 0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn rule_routing_matches_consumer_partitions() {
        use owlpar_partition::multilevel::PartitionOptions;
        let rules = vec![
            Rule::new(
                "p2q",
                atom(v(0), c(NodeId(20)), v(1)),
                vec![atom(v(0), c(NodeId(10)), v(1))],
            )
            .unwrap(),
            Rule::new(
                "q2r",
                atom(v(0), c(NodeId(30)), v(1)),
                vec![atom(v(0), c(NodeId(20)), v(1))],
            )
            .unwrap(),
        ];
        let parts = owlpar_partition::partition_rules(
            &rules,
            2,
            None,
            &PartitionOptions::default(),
        );
        let all = Arc::new(rules);
        let routing = Routing::Rule {
            partitions: Arc::new(parts.clone()),
            all_rules: Arc::clone(&all),
        };
        let mut out = Vec::new();
        // a predicate-20 triple interests the partition holding rule q2r
        let q_home = parts.assignment[1];
        routing.destinations(&t(5, 20, 6), 1 - q_home, &mut out);
        assert_eq!(out, vec![q_home]);
    }

    #[test]
    fn run_flags_latch() {
        let f = RunFlags::new();
        assert!(!f.failed());
        f.fail();
        assert!(f.failed());
        f.fail();
        assert!(f.failed());
    }
}
