//! The per-node loop of Algorithm 3.
//!
//! Each worker wraps a serial reasoner over its private store and runs
//! barrier-synchronized rounds: close the local store, route new
//! derivations to the partitions that may need them, exchange, repeat.
//! Termination: a round in which *no* worker sent anything (detected via
//! a shared cumulative send counter read between the two round barriers,
//! so every worker reaches the same verdict in the same round).

use crate::comm::WorkerComm;
use crate::cputime::CpuTimer;
use crate::stats::WorkerStats;
use owlpar_datalog::{Reasoner, Rule};
use owlpar_partition::RulePartitions;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{NodeId, Triple, TripleStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// How a worker decides where a freshly derived triple must travel.
pub enum Routing {
    /// Data partitioning: a derived triple belongs on the owner of its
    /// subject and the owner of its object (the partition table of
    /// Algorithm 1).
    Data {
        /// The partition table.
        owner: Arc<FxHashMap<NodeId, u32>>,
    },
    /// Rule partitioning: a derived triple travels to every partition
    /// holding a rule whose body might consume it.
    Rule {
        /// The rule-base split of Algorithm 2.
        partitions: Arc<RulePartitions>,
        /// The complete rule-base (for body matching).
        all_rules: Arc<Vec<Rule>>,
    },
    /// Hybrid partitioning (the paper's §VII future work, after Shao et
    /// al.): rules split into groups, data split into shards; worker
    /// `g·d + j` holds rule group `g` over data shard `j`. A derived
    /// triple goes to every interested rule group × both owner shards.
    Hybrid {
        /// Data-ownership table (shard ids `0..d`).
        owner: Arc<FxHashMap<NodeId, u32>>,
        /// Rule grouping (group ids `0..g`).
        groups: Arc<RulePartitions>,
        /// The complete rule-base.
        all_rules: Arc<Vec<Rule>>,
        /// Number of data shards (`d`).
        data_shards: u32,
    },
}

impl Routing {
    /// Destinations of `t` other than `me`.
    fn destinations(&self, t: &Triple, me: u32, out: &mut Vec<u32>) {
        out.clear();
        match self {
            Routing::Data { owner } => {
                let a = owner.get(&t.s).copied();
                let b = owner.get(&t.o).copied();
                if let Some(x) = a {
                    if x != me {
                        out.push(x);
                    }
                }
                if let Some(y) = b {
                    if y != me && a != Some(y) {
                        out.push(y);
                    }
                }
            }
            Routing::Rule {
                partitions,
                all_rules,
            } => {
                out.extend(partitions.consumers(all_rules, t, me));
            }
            Routing::Hybrid {
                owner,
                groups,
                all_rules,
                data_shards,
            } => {
                let a = owner.get(&t.s).copied();
                let b = owner.get(&t.o).copied();
                for g in groups.interested_groups(all_rules, t) {
                    for shard in [a, b].into_iter().flatten() {
                        let widx = g * data_shards + shard;
                        if widx != me && !out.contains(&widx) {
                            out.push(widx);
                        }
                    }
                }
            }
        }
    }
}

/// Shared state for distributed termination detection in the
/// asynchronous mode: exit when every worker is idle and every sent
/// triple has been processed.
pub struct AsyncControl {
    /// Cumulative triples sent (incremented *before* the send).
    pub total_sent: AtomicU64,
    /// Cumulative received triples fully processed.
    pub total_done: AtomicU64,
    /// Workers currently idle (inbox empty, nothing to derive).
    pub idle: std::sync::atomic::AtomicUsize,
    /// Latched once global quiescence is observed.
    pub exit: std::sync::atomic::AtomicBool,
}

impl Default for AsyncControl {
    fn default() -> Self {
        AsyncControl {
            total_sent: AtomicU64::new(0),
            total_done: AtomicU64::new(0),
            idle: std::sync::atomic::AtomicUsize::new(0),
            exit: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

/// Everything a worker thread needs.
pub struct WorkerCtx {
    /// Worker index (== partition id).
    pub id: usize,
    /// Total number of workers.
    pub k: usize,
    /// Private store, pre-loaded with the schema and this partition's
    /// base tuples.
    pub store: TripleStore,
    /// The wrapped serial reasoner (complete rule-base for data
    /// partitioning; this partition's subset for rule partitioning).
    pub reasoner: Reasoner,
    /// Triple routing policy.
    pub routing: Routing,
    /// Communication endpoint.
    pub comm: WorkerComm,
    /// Round barrier shared by all workers.
    pub barrier: Arc<Barrier>,
    /// Cumulative count of triples sent by anyone (termination detector).
    pub total_sent: Arc<AtomicU64>,
}

/// Run the worker to quiescence. Returns the final local store and stats.
pub fn run_worker(mut ctx: WorkerCtx) -> (TripleStore, WorkerStats) {
    let mut stats = WorkerStats {
        id: ctx.id,
        ..WorkerStats::default()
    };
    let me = ctx.id as u32;
    // CPU charged to the round in progress (reason + io); pushed at each
    // barrier so the master can replay the synchronous schedule.
    let mut round_cpu = Duration::ZERO;

    // Round 0 closes the base tuples; later rounds close received deltas.
    let t = CpuTimer::start();
    let base: Vec<Triple> = ctx.store.iter().copied().collect();
    let mut derived = ctx.reasoner.materialize_delta(&mut ctx.store, base);
    let dt = t.elapsed();
    stats.reason_time += dt;
    round_cpu += dt;
    stats.derived += derived.len();

    let mut last_total = 0u64;
    let mut dests: Vec<u32> = Vec::with_capacity(2);
    loop {
        stats.rounds += 1;

        // route + send
        let t = CpuTimer::start();
        let mut outbox: Vec<Vec<Triple>> = vec![Vec::new(); ctx.k];
        for tr in &derived {
            ctx.routing.destinations(tr, me, &mut dests);
            for &d in &dests {
                outbox[d as usize].push(*tr);
            }
        }
        let mut sent_now = 0u64;
        for (to, batch) in outbox.iter().enumerate() {
            sent_now += batch.len() as u64;
            ctx.comm.send(to, batch);
        }
        stats.sent += sent_now as usize;
        ctx.total_sent.fetch_add(sent_now, Ordering::SeqCst);
        let dt = t.elapsed();
        stats.io_time += dt;
        round_cpu += dt;

        // barrier A closes the round's send window — and the round's CPU
        // account (sync time is reconstructed by the master afterwards)
        stats.round_cpu.push(round_cpu);
        round_cpu = Duration::ZERO;
        ctx.barrier.wait();

        // receive (charged to the next round)
        let t = CpuTimer::start();
        let received = ctx.comm.collect();
        stats.received += received.len();
        let dt = t.elapsed();
        stats.io_time += dt;
        round_cpu += dt;

        // read the verdict inside the [A, B] window, then barrier B
        let now_total = ctx.total_sent.load(Ordering::SeqCst);
        ctx.barrier.wait();
        if now_total == last_total {
            break; // nobody moved a triple this round: global quiescence
        }
        last_total = now_total;

        // absorb + incremental closure
        let t = CpuTimer::start();
        let fresh: Vec<Triple> = received
            .into_iter()
            .filter(|tr| ctx.store.insert(*tr))
            .collect();
        derived = ctx.reasoner.materialize_delta(&mut ctx.store, fresh);
        let dt = t.elapsed();
        stats.reason_time += dt;
        round_cpu += dt;
        stats.derived += derived.len();
    }
    if round_cpu > Duration::ZERO {
        stats.round_cpu.push(round_cpu); // trailing collect work
    }

    stats.output_size = ctx.store.len();
    (ctx.store, stats)
}

/// The asynchronous variant of Algorithm 3 proposed in §VI-B: no round
/// barrier — a worker consumes whatever has arrived and keeps deriving.
/// Termination: every worker idle ∧ every sent triple processed
/// (`AsyncControl`). Requires the channel transport.
pub fn run_worker_async(
    mut ctx: WorkerCtx,
    control: Arc<AsyncControl>,
) -> (TripleStore, WorkerStats) {
    use std::sync::atomic::Ordering::SeqCst;
    let mut stats = WorkerStats {
        id: ctx.id,
        ..WorkerStats::default()
    };
    let me = ctx.id as u32;
    let mut burst_cpu = Duration::ZERO;

    let t = CpuTimer::start();
    let base: Vec<Triple> = ctx.store.iter().copied().collect();
    let mut derived = ctx.reasoner.materialize_delta(&mut ctx.store, base);
    let dt = t.elapsed();
    stats.reason_time += dt;
    burst_cpu += dt;
    stats.derived += derived.len();

    let mut dests: Vec<u32> = Vec::with_capacity(2);
    'outer: loop {
        stats.rounds += 1; // one burst = one "round" for accounting

        // route + send whatever the last burst derived
        let t = CpuTimer::start();
        let mut outbox: Vec<Vec<Triple>> = vec![Vec::new(); ctx.k];
        for tr in &derived {
            ctx.routing.destinations(tr, me, &mut dests);
            for &d in &dests {
                outbox[d as usize].push(*tr);
            }
        }
        let sent_now: u64 = outbox.iter().map(|b| b.len() as u64).sum();
        control.total_sent.fetch_add(sent_now, SeqCst);
        for (to, batch) in outbox.iter().enumerate() {
            ctx.comm.send(to, batch);
        }
        stats.sent += sent_now as usize;
        let dt = t.elapsed();
        stats.io_time += dt;
        burst_cpu += dt;
        stats.round_cpu.push(burst_cpu);
        burst_cpu = Duration::ZERO;

        // grab whatever has arrived; if nothing, go idle and watch for
        // quiescence
        let t = CpuTimer::start();
        let mut received = ctx.comm.try_collect();
        let dt = t.elapsed();
        stats.io_time += dt;
        burst_cpu += dt;
        if received.is_empty() {
            control.idle.fetch_add(1, SeqCst);
            loop {
                if control.exit.load(SeqCst) {
                    break 'outer;
                }
                received = ctx.comm.try_collect();
                if !received.is_empty() {
                    control.idle.fetch_sub(1, SeqCst);
                    break;
                }
                // all idle and nothing in flight ⇒ latch the exit flag
                if control.idle.load(SeqCst) == ctx.k
                    && control.total_sent.load(SeqCst) == control.total_done.load(SeqCst)
                {
                    control.exit.store(true, SeqCst);
                    break 'outer;
                }
                std::thread::yield_now();
            }
        }

        // absorb + incremental closure
        let t = CpuTimer::start();
        let n_received = received.len() as u64;
        stats.received += received.len();
        let fresh: Vec<Triple> = received
            .into_iter()
            .filter(|tr| ctx.store.insert(*tr))
            .collect();
        derived = ctx.reasoner.materialize_delta(&mut ctx.store, fresh);
        control.total_done.fetch_add(n_received, SeqCst);
        let dt = t.elapsed();
        stats.reason_time += dt;
        burst_cpu += dt;
        stats.derived += derived.len();
    }
    if burst_cpu > Duration::ZERO {
        stats.round_cpu.push(burst_cpu);
    }

    stats.output_size = ctx.store.len();
    (ctx.store, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_datalog::ast::build::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn data_routing_dedupes_same_owner() {
        let mut owner = FxHashMap::default();
        owner.insert(NodeId(1), 2u32);
        owner.insert(NodeId(2), 2u32);
        let r = Routing::Data {
            owner: Arc::new(owner),
        };
        let mut out = Vec::new();
        r.destinations(&t(1, 9, 2), 0, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn data_routing_skips_self() {
        let mut owner = FxHashMap::default();
        owner.insert(NodeId(1), 0u32);
        owner.insert(NodeId(2), 1u32);
        let r = Routing::Data {
            owner: Arc::new(owner),
        };
        let mut out = Vec::new();
        r.destinations(&t(1, 9, 2), 0, &mut out);
        assert_eq!(out, vec![1]);
        r.destinations(&t(1, 9, 2), 1, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn data_routing_ignores_unowned_endpoints() {
        let mut owner = FxHashMap::default();
        owner.insert(NodeId(1), 1u32);
        let r = Routing::Data {
            owner: Arc::new(owner),
        };
        let mut out = Vec::new();
        // object 999 (a class) has no owner
        r.destinations(&t(1, 9, 999), 0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn rule_routing_matches_consumer_partitions() {
        use owlpar_partition::multilevel::PartitionOptions;
        let rules = vec![
            Rule::new(
                "p2q",
                atom(v(0), c(NodeId(20)), v(1)),
                vec![atom(v(0), c(NodeId(10)), v(1))],
            )
            .unwrap(),
            Rule::new(
                "q2r",
                atom(v(0), c(NodeId(30)), v(1)),
                vec![atom(v(0), c(NodeId(20)), v(1))],
            )
            .unwrap(),
        ];
        let parts = owlpar_partition::partition_rules(
            &rules,
            2,
            None,
            &PartitionOptions::default(),
        );
        let all = Arc::new(rules);
        let routing = Routing::Rule {
            partitions: Arc::new(parts.clone()),
            all_rules: Arc::clone(&all),
        };
        let mut out = Vec::new();
        // a predicate-20 triple interests the partition holding rule q2r
        let q_home = parts.assignment[1];
        routing.destinations(&t(5, 20, 6), 1 - q_home, &mut out);
        assert_eq!(out, vec![q_home]);
    }
}
