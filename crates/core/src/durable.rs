//! Shared durability primitives: CRC-32 checksums and crash-safe file
//! writes.
//!
//! Two consumers share this module so the whole system applies one write
//! discipline:
//!
//! * the shared-file transport ([`crate::comm`]) — its message files are
//!   written with [`atomic_write`], so a crashed sender never leaves a
//!   half-message where `collect` will find it;
//! * the `owlpar-serve` durability layer — its write-ahead-log records
//!   are checksummed with [`crc32`] and its checkpoints are written with
//!   [`atomic_write_synced`], which additionally forces the bytes (and
//!   the directory entry) to stable storage before returning.
//!
//! The atomicity argument is the classic temp-file + `rename(2)` one: a
//! crash before the rename leaves only a `*.tmp` file that readers
//! ignore; a crash after the rename leaves the complete new file. POSIX
//! renames within one directory are atomic with respect to concurrent
//! observers.

use std::io::{self, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`. Detects the corruptions that matter for a
/// log on a local filesystem: torn writes, bit rot, and truncation.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = (c >> 8) ^ CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    !c
}

/// Suffix appended to a destination filename while its contents are
/// staged. Readers (checkpoint scans, WAL replay) must skip files with
/// this suffix: they are the debris of a crashed writer.
pub const TMP_SUFFIX: &str = ".tmp";

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    std::path::PathBuf::from(name)
}

/// Write `bytes` to `path` atomically (temp file + rename): concurrent
/// or post-crash readers see either the old file or the complete new
/// one, never a prefix. Does **not** fsync — use
/// [`atomic_write_synced`] when the bytes must survive power loss.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// [`atomic_write`] plus durability: the file's bytes are flushed to
/// stable storage before the rename, and the parent directory entry is
/// flushed after it, so the new file survives a crash of the whole
/// machine — the discipline checkpoints need.
pub fn atomic_write_synced(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}

/// Murmur3's 64-bit finalizer — a fast full-avalanche bijection.
const fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// A streaming 128-bit content digest: two independently-seeded FNV-1a
/// 64-bit lanes, each finished through [`fmix64`]. **Not**
/// collision-resistant against an adversary — it exists to key and
/// verify *caches of our own data* (the cluster's shipped-partition
/// cache), where the threat model is staleness and disk corruption, not
/// forgery. For that purpose an accidental 128-bit collision is
/// negligible.
#[derive(Debug, Clone)]
pub struct Digest128 {
    a: u64,
    b: u64,
}

impl Default for Digest128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest128 {
    /// Fresh digest state.
    pub fn new() -> Self {
        Digest128 {
            // Lane A: the standard FNV-1a offset basis; lane B: the same
            // basis whitened through fmix64 so the lanes decorrelate.
            a: 0xCBF2_9CE4_8422_2325,
            b: fmix64(0xCBF2_9CE4_8422_2325),
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(PRIME);
            self.b = (self.b ^ u64::from(!byte)).wrapping_mul(PRIME);
        }
    }

    /// Absorb a little-endian `u32` (convenience for id streams).
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Finish into 16 bytes (lane A then lane B, little-endian).
    pub fn finish(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&fmix64(self.a).to_le_bytes());
        out[8..].copy_from_slice(&fmix64(self.b).to_le_bytes());
        out
    }
}

/// One-shot [`Digest128`] over a byte slice.
pub fn digest128(bytes: &[u8]) -> [u8; 16] {
    let mut d = Digest128::new();
    d.update(bytes);
    d.finish()
}

/// Render a 128-bit digest as 32 lowercase hex characters (cache file
/// names, log lines).
pub fn hex128(digest: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Flush a directory's entry table to stable storage (no-op where the
/// platform does not support opening directories).
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(d) => d.sync_all(),
        // Non-unix platforms refuse to open directories; the rename is
        // still atomic, only the directory-entry durability is weaker.
        Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    /// Reference values from the ubiquitous CRC-32 (IEEE) everyone else
    /// computes — interoperability anchor for the on-disk format.
    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"hello, write-ahead log".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), good, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn digest128_is_deterministic_and_sensitive() {
        let base = digest128(b"partition payload bytes");
        assert_eq!(base, digest128(b"partition payload bytes"));
        assert_ne!(base, digest128(b"partition payload byteS"));
        assert_ne!(base, digest128(b"partition payload bytes "));
        assert_ne!(digest128(b""), digest128(b"\0"));
        // Streaming chunks == one-shot.
        let mut d = Digest128::new();
        d.update(b"partition ");
        d.update(b"payload bytes");
        assert_eq!(d.finish(), base);
        // The two lanes differ (they would collapse the digest to 64
        // bits if they ever agreed on all inputs).
        assert_ne!(base[..8], base[8..]);
        assert_eq!(hex128(&base).len(), 32);
        assert!(hex128(&base).chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn atomic_write_replaces_content_and_removes_tmp() {
        let dir = std::env::temp_dir().join(format!("owlpar-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.bin");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write_synced(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(
            !tmp_path(&path).exists(),
            "temp staging file must not survive a successful write"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
