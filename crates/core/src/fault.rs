//! Deterministic fault injection for the parallel runtime.
//!
//! A [`FaultPlan`] is a list of faults pinned to `(round, worker)`
//! coordinates — transient IO errors, message corruption/truncation,
//! delays, and worker panics. The plan is attached to a run through
//! `ParallelConfig::fault`; each communication endpoint consults its
//! per-worker slice ([`FaultState`]) at every IO attempt, so the same
//! plan replays the same faults on every run. Plans can be written
//! explicitly ([`FaultPlan::with`]), scattered pseudo-randomly from a
//! seed ([`FaultPlan::scattered`]), or parsed from the CLI's
//! `--fault-plan` spec ([`FaultPlan::parse`]).
//!
//! This is the mechanism the robustness tests (and future chaos
//! benchmarks) drive: inject transient faults and assert the closure is
//! unchanged; inject a panic and assert the run ends with a structured
//! error or a recovered closure instead of a hang.

use std::time::Duration;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the first `failures` IO attempts of every send this worker
    /// performs in the round with a transient (retryable) error.
    SendIo {
        /// Attempts to fail before letting the operation through.
        failures: u32,
    },
    /// Fail the first `failures` IO attempts of the round's collect.
    CollectIo {
        /// Attempts to fail before letting the operation through.
        failures: u32,
    },
    /// Corrupt the payload of messages sent to worker `to` this round
    /// (bytes are bit-flipped; shared-file transport only).
    Corrupt {
        /// Receiving worker whose messages are mangled.
        to: usize,
    },
    /// Truncate messages sent to worker `to` this round to half their
    /// length (shared-file transport only).
    Truncate {
        /// Receiving worker whose messages are cut short.
        to: usize,
    },
    /// Sleep this many milliseconds before the round's sends — delays
    /// (and therefore reorders) message arrival relative to other
    /// workers.
    Delay {
        /// Wall-clock delay in milliseconds.
        millis: u64,
    },
    /// Panic the worker at the start of the round (contained by the
    /// runtime's `catch_unwind` wrapper).
    Panic,
    /// Drop the worker's connection at the start of the round. Only
    /// meaningful for the multi-process TCP cluster (`owlpar-net`),
    /// where the worker closes its master connection and exits — the
    /// master's deadline detection must notice and recover. The
    /// in-process runtime ignores it (its workers have no connection to
    /// drop; use [`FaultKind::Panic`] there).
    Disconnect,
}

/// A fault pinned to its `(round, worker)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round in which the fault fires (0 = the initial exchange).
    pub round: usize,
    /// Worker at which it fires.
    pub worker: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Every planned fault.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: add one fault at `(round, worker)`.
    pub fn with(mut self, round: usize, worker: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            round,
            worker,
            kind,
        });
        self
    }

    /// Scatter `n` events drawn round-robin from `kinds` across workers
    /// `0..k` and rounds `0..max_round`, deterministically from `seed`
    /// (xorshift64*; same seed → same plan).
    pub fn scattered(
        seed: u64,
        k: usize,
        max_round: usize,
        kinds: &[FaultKind],
        n: usize,
    ) -> Self {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        let mut plan = FaultPlan::new();
        if kinds.is_empty() || k == 0 || max_round == 0 {
            return plan;
        }
        for i in 0..n {
            let kind = kinds[i % kinds.len()];
            let round = (next() % max_round as u64) as usize;
            let worker = (next() % k as u64) as usize;
            plan = plan.with(round, worker, kind);
        }
        plan
    }

    /// Parse the CLI spec: comma-separated `kind@round.worker[:param]`
    /// entries, where `kind` is one of `io` / `collect-io` (param =
    /// failed attempts, default 2), `corrupt` / `truncate` (param =
    /// receiving worker, default 0), `delay` (param = milliseconds,
    /// default 10), `panic` (no param), `disconnect` (no param; TCP
    /// cluster only — the worker drops its connection and exits).
    ///
    /// Example: `io@1.0:2,corrupt@2.1:0,panic@1.2,delay@0.1:5,disconnect@1.3`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind_str, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("'{entry}': expected kind@round.worker[:param]"))?;
            let (coord, param) = match rest.split_once(':') {
                Some((c, p)) => (c, Some(p)),
                None => (rest, None),
            };
            let (round_str, worker_str) = coord
                .split_once('.')
                .ok_or_else(|| format!("'{entry}': expected round.worker coordinates"))?;
            let round: usize = round_str
                .parse()
                .map_err(|_| format!("'{entry}': bad round '{round_str}'"))?;
            let worker: usize = worker_str
                .parse()
                .map_err(|_| format!("'{entry}': bad worker '{worker_str}'"))?;
            let num = |default: u64| -> Result<u64, String> {
                match param {
                    None => Ok(default),
                    Some(p) => p
                        .parse()
                        .map_err(|_| format!("'{entry}': bad parameter '{p}'")),
                }
            };
            let kind = match kind_str {
                "io" => FaultKind::SendIo {
                    failures: num(2)? as u32,
                },
                "collect-io" => FaultKind::CollectIo {
                    failures: num(2)? as u32,
                },
                "corrupt" => FaultKind::Corrupt {
                    to: num(0)? as usize,
                },
                "truncate" => FaultKind::Truncate {
                    to: num(0)? as usize,
                },
                "delay" => FaultKind::Delay { millis: num(10)? },
                "panic" => FaultKind::Panic,
                "disconnect" => FaultKind::Disconnect,
                other => return Err(format!("'{entry}': unknown fault kind '{other}'")),
            };
            plan = plan.with(round, worker, kind);
        }
        Ok(plan)
    }

    /// This worker's slice of the plan, with live retry budgets.
    pub(crate) fn for_worker(&self, worker: usize) -> FaultState {
        FaultState {
            events: self
                .events
                .iter()
                .filter(|e| e.worker == worker)
                .map(|e| LiveEvent {
                    event: *e,
                    budget_used: 0,
                })
                .collect(),
        }
    }
}

struct LiveEvent {
    event: FaultEvent,
    /// Injected failures already consumed (for the `*Io` kinds).
    budget_used: u32,
}

/// One endpoint's live view of the plan (owned by its `WorkerComm`).
#[derive(Default)]
pub(crate) struct FaultState {
    events: Vec<LiveEvent>,
}

impl FaultState {
    /// True when a `Panic` event is scheduled here this round.
    pub(crate) fn panic_scheduled(&self, round: usize) -> bool {
        self.events.iter().any(|l| {
            l.event.round == round && matches!(l.event.kind, FaultKind::Panic)
        })
    }

    /// Wall-clock delay to apply before this round's sends.
    pub(crate) fn send_delay(&self, round: usize) -> Option<Duration> {
        self.events.iter().find_map(|l| match l.event.kind {
            FaultKind::Delay { millis } if l.event.round == round => {
                Some(Duration::from_millis(millis))
            }
            _ => None,
        })
    }

    /// Consume one injected send-IO failure if budget remains.
    pub(crate) fn take_send_io(&mut self, round: usize) -> bool {
        self.take_io(round, true)
    }

    /// Consume one injected collect-IO failure if budget remains.
    pub(crate) fn take_collect_io(&mut self, round: usize) -> bool {
        self.take_io(round, false)
    }

    fn take_io(&mut self, round: usize, send: bool) -> bool {
        for l in &mut self.events {
            if l.event.round != round {
                continue;
            }
            let budget = match (l.event.kind, send) {
                (FaultKind::SendIo { failures }, true) => failures,
                (FaultKind::CollectIo { failures }, false) => failures,
                _ => continue,
            };
            if l.budget_used < budget {
                l.budget_used += 1;
                return true;
            }
        }
        false
    }

    /// How to mangle this round's payload to worker `to`, if at all.
    /// Returns `Some(truncate_only)`.
    pub(crate) fn mangle(&self, round: usize, to: usize) -> Option<bool> {
        self.events.iter().find_map(|l| {
            if l.event.round != round {
                return None;
            }
            match l.event.kind {
                FaultKind::Corrupt { to: t } if t == to => Some(false),
                FaultKind::Truncate { to: t } if t == to => Some(true),
                _ => None,
            }
        })
    }

    /// Fire a scheduled panic. Lives here — not in the worker loop — so
    /// `worker.rs` stays free of `panic!` on runtime paths; this is the
    /// one deliberate panic site, and it exists to be caught by the
    /// containment wrapper.
    #[allow(clippy::panic)]
    pub(crate) fn fire_panic(&self, round: usize, worker: usize) {
        panic!("injected fault: worker {worker} panics at round {round}");
    }
}

/// A named point in the `owlpar-serve` durability pipeline where a
/// process crash can be injected. Unlike [`FaultKind`] — whose faults
/// are pinned to `(round, worker)` coordinates of the parallel runtime —
/// crash points are pinned to the *Nth arrival* at a pipeline location,
/// because the durability path has no rounds: its natural clock is "how
/// many times have we been about to fsync the WAL".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the WAL record bytes are (possibly partially) written but
    /// before they are fsynced: the canonical torn-record crash. The
    /// batch was **not** acknowledged; recovery must drop the torn tail.
    BeforeWalFsync,
    /// After one or more WAL appends were fsynced (and acknowledged) but
    /// before the next checkpoint starts: recovery must replay the WAL
    /// tail on top of the previous checkpoint.
    AfterWalBeforeCheckpoint,
    /// In the middle of writing a checkpoint, before its atomic rename:
    /// recovery must ignore the staging debris and use the previous
    /// checkpoint plus the un-rotated WAL.
    MidCheckpoint,
}

impl CrashPoint {
    /// All crash points, for schedule iteration and tests.
    pub const ALL: [CrashPoint; 3] = [
        CrashPoint::BeforeWalFsync,
        CrashPoint::AfterWalBeforeCheckpoint,
        CrashPoint::MidCheckpoint,
    ];

    /// The CLI spelling (`--crash-at <name>@<n>`).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeWalFsync => "before-wal-fsync",
            CrashPoint::AfterWalBeforeCheckpoint => "after-wal-before-checkpoint",
            CrashPoint::MidCheckpoint => "mid-checkpoint",
        }
    }

    fn index(self) -> usize {
        match self {
            CrashPoint::BeforeWalFsync => 0,
            CrashPoint::AfterWalBeforeCheckpoint => 1,
            CrashPoint::MidCheckpoint => 2,
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic schedule of process crashes: "crash at the `n`th
/// arrival (0-based) at crash point `p`". The serve durability layer
/// consults its [`CrashState`] at every point; the CLI's `--crash-at`
/// flag parses into one of these and aborts the process for real, while
/// tests run the same schedule in simulation mode (persistence stops,
/// a typed error surfaces, and the test recovers from the files alone).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Every scheduled crash.
    pub events: Vec<(CrashPoint, u32)>,
}

impl CrashPlan {
    /// The empty plan (never crashes).
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// Builder-style: crash at the `occurrence`th arrival at `point`.
    pub fn with(mut self, point: CrashPoint, occurrence: u32) -> Self {
        self.events.push((point, occurrence));
        self
    }

    /// Parse the CLI spec: comma-separated `point[@occurrence]` entries
    /// where `point` is `before-wal-fsync`, `after-wal-before-checkpoint`
    /// or `mid-checkpoint` and `occurrence` defaults to 0 (the first
    /// arrival). Example: `before-wal-fsync@2,mid-checkpoint`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = CrashPlan::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (name, occ) = match entry.split_once('@') {
                Some((n, o)) => (
                    n,
                    o.parse::<u32>()
                        .map_err(|_| format!("'{entry}': bad occurrence '{o}'"))?,
                ),
                None => (entry, 0),
            };
            let point = CrashPoint::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| format!("'{entry}': unknown crash point '{name}'"))?;
            plan = plan.with(point, occ);
        }
        Ok(plan)
    }

    /// A live counting view of the plan.
    pub fn state(&self) -> CrashState {
        CrashState {
            plan: self.clone(),
            arrivals: [0; 3],
        }
    }
}

/// Live occurrence counters over a [`CrashPlan`]. One per durability
/// layer; `should_crash` is called at every crash point and returns
/// `true` exactly when the plan scheduled a crash for this arrival.
#[derive(Debug, Clone)]
pub struct CrashState {
    plan: CrashPlan,
    arrivals: [u32; 3],
}

impl CrashState {
    /// Count an arrival at `point`; `true` iff the plan crashes here.
    pub fn should_crash(&mut self, point: CrashPoint) -> bool {
        let n = self.arrivals[point.index()];
        self.arrivals[point.index()] = n.saturating_add(1);
        self.plan
            .events
            .iter()
            .any(|&(p, occ)| p == point && occ == n)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn builder_and_for_worker_filtering() {
        let plan = FaultPlan::new()
            .with(1, 0, FaultKind::Panic)
            .with(2, 1, FaultKind::SendIo { failures: 3 });
        let s0 = plan.for_worker(0);
        assert!(s0.panic_scheduled(1));
        assert!(!s0.panic_scheduled(2));
        let mut s1 = plan.for_worker(1);
        assert!(!s1.panic_scheduled(1));
        assert!(s1.take_send_io(2));
        assert!(s1.take_send_io(2));
        assert!(s1.take_send_io(2));
        assert!(!s1.take_send_io(2), "budget exhausted");
        assert!(!s1.take_collect_io(2), "send budget is not collect budget");
    }

    #[test]
    fn scattered_is_deterministic_and_in_range() {
        let kinds = [FaultKind::SendIo { failures: 1 }, FaultKind::Delay { millis: 5 }];
        let a = FaultPlan::scattered(42, 4, 3, &kinds, 10);
        let b = FaultPlan::scattered(42, 4, 3, &kinds, 10);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 10);
        for e in &a.events {
            assert!(e.worker < 4);
            assert!(e.round < 3);
        }
        let c = FaultPlan::scattered(43, 4, 3, &kinds, 10);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn parse_full_grammar() {
        let plan =
            FaultPlan::parse("io@1.0:2, collect-io@0.1, corrupt@2.1:0, truncate@2.0:1, delay@0.1:5, panic@1.2")
                .unwrap();
        assert_eq!(plan.events.len(), 6);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                round: 1,
                worker: 0,
                kind: FaultKind::SendIo { failures: 2 }
            }
        );
        assert_eq!(plan.events[1].kind, FaultKind::CollectIo { failures: 2 });
        assert_eq!(plan.events[2].kind, FaultKind::Corrupt { to: 0 });
        assert_eq!(plan.events[3].kind, FaultKind::Truncate { to: 1 });
        assert_eq!(plan.events[4].kind, FaultKind::Delay { millis: 5 });
        assert_eq!(plan.events[5].kind, FaultKind::Panic);
    }

    #[test]
    fn parse_disconnect_for_the_cluster_runtime() {
        let plan = FaultPlan::parse("disconnect@1.3").unwrap();
        assert_eq!(
            plan.events,
            vec![FaultEvent {
                round: 1,
                worker: 3,
                kind: FaultKind::Disconnect
            }]
        );
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic@1").is_err());
        assert!(FaultPlan::parse("panic@a.b").is_err());
        assert!(FaultPlan::parse("explode@1.0").is_err());
        assert!(FaultPlan::parse("io@1.0:x").is_err());
    }

    #[test]
    fn parse_empty_is_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
    }

    #[test]
    fn crash_plan_counts_occurrences_per_point() {
        let plan = CrashPlan::new()
            .with(CrashPoint::BeforeWalFsync, 2)
            .with(CrashPoint::MidCheckpoint, 0);
        let mut s = plan.state();
        assert!(!s.should_crash(CrashPoint::BeforeWalFsync), "arrival 0");
        assert!(!s.should_crash(CrashPoint::BeforeWalFsync), "arrival 1");
        assert!(s.should_crash(CrashPoint::BeforeWalFsync), "arrival 2");
        assert!(!s.should_crash(CrashPoint::BeforeWalFsync), "fires once");
        assert!(s.should_crash(CrashPoint::MidCheckpoint));
        assert!(!s.should_crash(CrashPoint::AfterWalBeforeCheckpoint));
    }

    #[test]
    fn crash_plan_parse_roundtrips_names() {
        let plan =
            CrashPlan::parse("before-wal-fsync@2, mid-checkpoint, after-wal-before-checkpoint@1")
                .unwrap();
        assert_eq!(
            plan.events,
            vec![
                (CrashPoint::BeforeWalFsync, 2),
                (CrashPoint::MidCheckpoint, 0),
                (CrashPoint::AfterWalBeforeCheckpoint, 1),
            ]
        );
        assert_eq!(CrashPlan::parse("").unwrap(), CrashPlan::new());
        assert!(CrashPlan::parse("explode").is_err());
        assert!(CrashPlan::parse("mid-checkpoint@x").is_err());
    }

    #[test]
    fn mangle_matches_target_only() {
        let plan = FaultPlan::new().with(2, 0, FaultKind::Corrupt { to: 1 });
        let s = plan.for_worker(0);
        assert_eq!(s.mangle(2, 1), Some(false));
        assert_eq!(s.mangle(2, 0), None);
        assert_eq!(s.mangle(1, 1), None);
    }
}
