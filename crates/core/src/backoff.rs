//! Capped exponential backoff — the one retry-pacing discipline shared
//! by every transport in the system.
//!
//! Both consumers retry for the same reason (a transiently unavailable
//! peer or filesystem) and therefore pace the same way:
//!
//! * the communication endpoints ([`crate::comm`]) sleep between retried
//!   IO attempts on the shared-file transport;
//! * the TCP transport (`owlpar-net`) sleeps between connection attempts
//!   while a peer's listener is still coming up.
//!
//! The schedule is the classic capped doubling: `base, 2·base, 4·base, …`
//! clamped to `cap`. No jitter — runs are deterministic by design (the
//! fault-injection tests replay exact schedules), and the fabrics are
//! small enough (k ≤ dozens) that synchronized retries are harmless.

use std::time::Duration;

/// An iterator-like source of capped, exponentially growing delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff {
            next: base.min(cap),
            cap,
        }
    }

    /// The next delay in the schedule (advances the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.cap);
        d
    }

    /// Sleep for the next delay in the schedule.
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(5));
        assert_eq!(b.next_delay(), Duration::from_millis(1));
        assert_eq!(b.next_delay(), Duration::from_millis(2));
        assert_eq!(b.next_delay(), Duration::from_millis(4));
        assert_eq!(b.next_delay(), Duration::from_millis(5), "clamped");
        assert_eq!(b.next_delay(), Duration::from_millis(5), "stays clamped");
    }

    #[test]
    fn base_above_cap_is_clamped_immediately() {
        let mut b = Backoff::new(Duration::from_secs(10), Duration::from_millis(3));
        assert_eq!(b.next_delay(), Duration::from_millis(3));
    }
}
