//! A round barrier that survives member loss.
//!
//! `std::sync::Barrier` is unusable for a fault-tolerant fabric: when a
//! worker dies before arriving, every other worker blocks forever. This
//! barrier adds the two operations crash containment needs:
//!
//! * [`RoundBarrier::wait`] takes a timeout — a worker that waits longer
//!   than the configured round budget gets a [`BarrierTimeout`] back
//!   instead of hanging, withdraws its arrival, and can report a
//!   structured `WorkerError`;
//! * [`RoundBarrier::defect`] permanently removes one member — called by
//!   the panic-containment wrapper on behalf of a dead worker, it lowers
//!   the arrival threshold of the current and all future rounds and wakes
//!   current waiters so survivors proceed.
//!
//! Generation counting makes the barrier reusable across rounds (the
//! worker loop crosses it twice per round).

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The waiting worker's patience ran out before the barrier released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierTimeout {
    /// How long the worker waited.
    pub waited: Duration,
}

struct State {
    /// Members still participating (starts at `n`, lowered by `defect`).
    expected: usize,
    /// Members arrived in the current generation.
    arrived: usize,
    /// Completed barrier generations.
    generation: u64,
}

/// A reusable, timeout-aware, defection-tolerant barrier.
pub struct RoundBarrier {
    state: Mutex<State>,
    cvar: Condvar,
}

impl RoundBarrier {
    /// Barrier over `n` members.
    pub fn new(n: usize) -> Self {
        RoundBarrier {
            state: Mutex::new(State {
                expected: n,
                arrived: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Lock the state, shrugging off poisoning: the state is a plain
    /// counter triple, always left consistent, and a panicking worker is
    /// exactly the situation the barrier must keep working through.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arrive and wait for the rest of the generation, at most `timeout`.
    ///
    /// On timeout the arrival is withdrawn, so a subsequent `defect` keeps
    /// the accounting consistent.
    pub fn wait(&self, timeout: Duration) -> Result<(), BarrierTimeout> {
        let start = Instant::now();
        let mut s = self.lock();
        s.arrived += 1;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        loop {
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                s.arrived = s.arrived.saturating_sub(1);
                return Err(BarrierTimeout { waited: elapsed });
            }
            let (guard, _) = self
                .cvar
                .wait_timeout(s, timeout - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            if s.generation != gen {
                return Ok(());
            }
        }
    }

    /// Permanently remove one member (a dead worker). Wakes waiters; if
    /// the remaining arrivals now satisfy the lowered threshold, the
    /// current generation completes immediately.
    pub fn defect(&self) {
        let mut s = self.lock();
        s.expected = s.expected.saturating_sub(1);
        if s.expected > 0 && s.arrived >= s.expected {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
        }
        self.cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use std::sync::Arc;

    const LONG: Duration = Duration::from_secs(10);

    #[test]
    fn single_member_never_blocks() {
        let b = RoundBarrier::new(1);
        for _ in 0..5 {
            b.wait(Duration::from_millis(1)).unwrap();
        }
    }

    #[test]
    fn releases_all_members_each_round() {
        let b = Arc::new(RoundBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    b.wait(LONG).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_times_out_when_member_missing() {
        let b = RoundBarrier::new(2);
        let err = b.wait(Duration::from_millis(20)).unwrap_err();
        assert!(err.waited >= Duration::from_millis(20));
    }

    #[test]
    fn defect_releases_current_waiters() {
        let b = Arc::new(RoundBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.wait(LONG)));
        }
        // let both waiters arrive, then the third member dies
        std::thread::sleep(Duration::from_millis(50));
        b.defect();
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
        // the barrier keeps working for the two survivors
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait(LONG));
        b.wait(LONG).unwrap();
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn timeout_withdraws_arrival() {
        let b = Arc::new(RoundBarrier::new(3));
        assert!(b.wait(Duration::from_millis(10)).is_err());
        // two fresh arrivals + one defect should now release cleanly
        let b1 = Arc::clone(&b);
        let h = std::thread::spawn(move || b1.wait(LONG));
        std::thread::sleep(Duration::from_millis(30));
        let b2 = Arc::clone(&b);
        let h2 = std::thread::spawn(move || b2.wait(LONG));
        std::thread::sleep(Duration::from_millis(30));
        b.defect();
        assert!(h.join().unwrap().is_ok());
        assert!(h2.join().unwrap().is_ok());
    }
}
