//! Graph-aware plan analysis and `--strategy auto` selection.
//!
//! `owlpar-lint`'s [`analyze_plan`] is deliberately abstract — it scores
//! a [`PlanInputs`] shadow of a plan without ever seeing a triple. This
//! module builds that shadow from the *real* artifacts the runtime would
//! distribute: it partitions through [`crate::master::build_partitions`]
//! (the exact code path `prepare_run` uses), reads base sizes and
//! routing tables off the result, estimates per-rule firings against the
//! actual KB, and prices the `Setup` phase with the same delta/varint
//! triple blocks the cluster wire format ships
//! ([`crate::frame::encode_triple_block`]).
//!
//! Two estimates deserve a note:
//!
//! * **productions** — a rule's firing estimate is the *smallest* match
//!   count of any body atom against the base KB. The head-predicate
//!   histogram (the rule-partitioning weight) badly overestimates
//!   `rdf:type`-headed rules — every one of them would be charged the
//!   entire type census — while the min-body-atom bound tracks which
//!   rules can actually fire;
//! * **cross fraction** — for data strategies the probability a derived
//!   triple's endpoint lives remote is taken from the partitioning's
//!   measured input-replication excess ([`PartitionQuality::ir_excess`]):
//!   the ownership graph replicates exactly the boundary nodes, which
//!   are exactly the nodes whose triples cross partitions.

use crate::config::PartitioningStrategy;
use crate::error::RunError;
use crate::frame::encode_triple_block;
use crate::master::{build_partitions, PartitionParts};
use crate::stats::plan_cost_model;
use crate::worker::Routing;
use owlpar_datalog::ast::{Atom, TermPat};
use owlpar_datalog::Rule;
use owlpar_lint::{
    analyze_plan, LintOptions, PartitionContext, PlanInputs, PlanReport, RouteModel,
};
use owlpar_partition::metrics::PartitionQuality;
use owlpar_partition::multilevel::PartitionOptions;
use owlpar_partition::partition_rules;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{Dictionary, Graph, NodeId, Triple};

/// Floor for the data-routing cross fraction: even a perfect min-cut
/// partitioning ships *some* derivations (the estimate must never claim
/// a free lunch).
const MIN_CROSS_FRACTION: f64 = 0.02;

/// Cross fraction assumed when no partitioning quality is at hand
/// (structure-only analysis).
const DEFAULT_CROSS_FRACTION: f64 = 0.1;

/// Derivation–ownership correlation discount on the data-routing
/// boundary fraction: a worker derives a triple because the producing
/// body atoms matched *locally* — the derived triple usually shares its
/// subject with a locally-owned body triple — so its endpoints are
/// owned locally far more often than the raw node-replication excess
/// ([`PartitionQuality::ir_excess`]) suggests. Charging endpoints
/// independently at `ir_excess` overshoots measured data-strategy round
/// traffic 3–5× on the bench KB; 0.25 keeps both k ∈ {2, 4} inside the
/// 2× band (see `owlpar-net`'s plan-tolerance test).
const DATA_LOCALITY_DISCOUNT: f64 = 0.25;

/// Duplicate-suppression discount on every exchange estimate
/// ([`PlanInputs::exchange_discount`]): production estimates count raw
/// firings, but the runtime only ships *new* remote triples — repeat
/// derivations and triples the receiver already holds never touch the
/// wire. Calibrated against the bench KB's measured round traffic at
/// k ∈ {2, 4} for all three strategies (see `owlpar-net`'s
/// plan-tolerance test); raw charges overshoot ~2–3×.
const EXCHANGE_DEDUP_DISCOUNT: f64 = 0.6;

/// Everything strategy-independent the analyzer needs about one KB +
/// rule-base: the effective rules, the split base, the predicate
/// histogram, and per-rule production estimates. Build it once, score
/// every candidate strategy against it.
pub struct PlanningBase {
    /// The effective rule-base (compiled ontology rules + extras).
    pub all_rules: Vec<Rule>,
    /// Schema triples (replicated to every worker).
    pub schema: Vec<Triple>,
    /// Instance triples (the partitioned base).
    pub instance: Vec<Triple>,
    /// `rdf:type`'s node id, when interned.
    pub rdf_type: Option<NodeId>,
    /// Predicate histogram over the whole base (schema + instance).
    pub hist: FxHashMap<NodeId, usize>,
    /// Per-rule production estimates (min body-atom match count).
    pub productions: Vec<u64>,
}

impl PlanningBase {
    /// Index the base and estimate per-rule productions.
    pub fn new(
        all_rules: Vec<Rule>,
        schema: Vec<Triple>,
        instance: Vec<Triple>,
        rdf_type: Option<NodeId>,
    ) -> Self {
        // One pass over the base builds every histogram the atom
        // matcher needs: by predicate, by (predicate, object), by
        // (subject, predicate).
        let mut hist: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut hist_po: FxHashMap<(NodeId, NodeId), usize> = FxHashMap::default();
        let mut hist_sp: FxHashMap<(NodeId, NodeId), usize> = FxHashMap::default();
        let mut total = 0usize;
        for t in schema.iter().chain(instance.iter()) {
            total += 1;
            *hist.entry(t.p).or_insert(0) += 1;
            *hist_po.entry((t.p, t.o)).or_insert(0) += 1;
            *hist_sp.entry((t.s, t.p)).or_insert(0) += 1;
        }
        let match_count = |a: &Atom| -> usize {
            match (a.s, a.p, a.o) {
                (TermPat::Var(_), TermPat::Const(p), TermPat::Var(_)) => {
                    hist.get(&p).copied().unwrap_or(0)
                }
                (TermPat::Var(_), TermPat::Const(p), TermPat::Const(o)) => {
                    hist_po.get(&(p, o)).copied().unwrap_or(0)
                }
                (TermPat::Const(s), TermPat::Const(p), TermPat::Var(_)) => {
                    hist_sp.get(&(s, p)).copied().unwrap_or(0)
                }
                // Fully ground atoms: bounded by the (p, o) census.
                (TermPat::Const(_), TermPat::Const(p), TermPat::Const(o)) => {
                    hist_po.get(&(p, o)).copied().unwrap_or(0).min(1)
                }
                // Variable predicate: anything could match.
                _ => total,
            }
        };
        // A body atom also matches triples *derived* by upstream rules,
        // not just the base: `type Faculty` may never be asserted yet
        // fires `subClassOf:Faculty<Employee` for every derived Faculty.
        // Propagate estimates through the producer→consumer chain to a
        // bounded fixpoint (estimates only grow; the sweep cap keeps
        // recursive SCCs from amplifying without limit).
        let n = all_rules.len();
        let mut productions: Vec<u64> = vec![0; n];
        for _ in 0..8 {
            let mut changed = false;
            for (i, r) in all_rules.iter().enumerate() {
                let est = r
                    .body
                    .iter()
                    .map(|a| {
                        let derived: u64 = all_rules
                            .iter()
                            .enumerate()
                            .filter(|&(j, rj)| j != i && rj.head.may_unify(a))
                            .map(|(j, _)| productions[j])
                            .sum();
                        match_count(a) as u64 + derived
                    })
                    .min()
                    .unwrap_or(0);
                if est > productions[i] {
                    productions[i] = est;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        PlanningBase {
            all_rules,
            schema,
            instance,
            rdf_type,
            hist,
            productions,
        }
    }

    /// Compile `graph`'s ontology (interning its last constants — same
    /// caveat as [`crate::prepare_run`]) and build the planning base for
    /// the effective rule-base.
    pub fn compile(graph: &mut Graph, extra_rules: &[Rule]) -> Self {
        let hr = owlpar_horst::HorstReasoner::from_graph(
            graph,
            owlpar_datalog::MaterializationStrategy::ForwardSemiNaive,
        );
        let rdf_type = graph
            .dict
            .id(&owlpar_rdf::Term::iri(owlpar_rdf::vocab::RDF_TYPE));
        let mut all_rules = hr.rules().to_vec();
        all_rules.extend(extra_rules.iter().cloned());
        PlanningBase::new(
            all_rules,
            hr.schema_triples.clone(),
            hr.instance_triples.clone(),
            rdf_type,
        )
    }
}

/// The strategies `--strategy auto` scores: min-cut data partitioning,
/// weighted rule partitioning, and — when `k` splits evenly — a 2-group
/// hybrid.
pub fn auto_candidates(k: usize) -> Vec<PartitioningStrategy> {
    let mut v = vec![
        PartitioningStrategy::data_graph(),
        PartitioningStrategy::Rule { weighted: true },
    ];
    if k >= 4 && k.is_multiple_of(2) {
        v.push(PartitioningStrategy::Hybrid { rule_groups: 2 });
    }
    v
}

/// Deployment context a strategy lints under.
fn context_of(strategy: &PartitioningStrategy) -> Result<PartitionContext, RunError> {
    match strategy {
        PartitioningStrategy::Data(_) | PartitioningStrategy::Hybrid { .. } => {
            Ok(PartitionContext::DataPartitioned)
        }
        PartitioningStrategy::Rule { .. } => Ok(PartitionContext::RulePartitioned),
        PartitioningStrategy::Auto => Err(RunError::config(
            "cannot analyze the auto strategy itself; analyze its candidates",
        )),
    }
}

/// Boundary fraction for the pure data strategy: locality-discounted —
/// the deriving worker owns the body triples, so it usually owns the
/// derived endpoints too.
fn data_cross_fraction(quality: Option<&PartitionQuality>) -> f64 {
    quality
        .map(|q| q.ir_excess() * DATA_LOCALITY_DISCOUNT)
        .unwrap_or(DEFAULT_CROSS_FRACTION)
        .clamp(MIN_CROSS_FRACTION, 1.0)
}

/// Boundary fraction for the hybrid scheme's shard dimension:
/// **undiscounted** — rule-group specialization decouples where a
/// triple is derived from which shard owns its endpoints, so the raw
/// replication excess tracks measured shard traffic.
fn hybrid_cross_fraction(quality: Option<&PartitionQuality>) -> f64 {
    quality
        .map(|q| q.ir_excess())
        .unwrap_or(DEFAULT_CROSS_FRACTION)
        .clamp(MIN_CROSS_FRACTION, 1.0)
}

/// v2 `Setup` payload size estimate for one worker, mirroring the
/// cluster wire format's components: exact delta/varint triple blocks
/// for schema + base, compact rules, the routing table, digests and
/// framing.
fn setup_bytes_v2(
    schema_block: u64,
    base_block: u64,
    all_rules: &[Rule],
    my_rules: usize,
    routing_entries: u64,
    frame_overhead: u64,
) -> u64 {
    let rules: u64 = all_rules
        .iter()
        .map(|r| 3 + r.name.len() as u64 + 9 * (1 + r.body.len() as u64))
        .sum();
    // 3 digests (48 B) + timeouts/counters ≈ 64 B of fixed header.
    schema_block + base_block + rules + my_rules as u64 * 2 + routing_entries * 3
        + 64
        + frame_overhead
}

/// Exact v1 `Setup` cost for one worker — same formula the wire
/// accounting's `v1_setup_payload_cost` uses: raw 12-byte triples,
/// fixed 15-byte atoms, both rule lists in full, 8-byte ownership pairs.
fn setup_bytes_v1(
    schema: usize,
    base: usize,
    all_rules: &[Rule],
    my_rules: &[Rule],
    owner_pairs: u64,
    assignment_len: u64,
) -> u64 {
    let atom = 15u64;
    let rule = |r: &Rule| 4 + r.name.len() as u64 + atom + 2 + atom * r.body.len() as u64;
    let rules = |rs: &[Rule]| 4 + rs.iter().map(rule).sum::<u64>();
    let owner = if owner_pairs > 0 { 4 + 8 * owner_pairs } else { 0 };
    let assignment = if assignment_len > 0 {
        4 + 4 * assignment_len
    } else {
        0
    };
    4 + 2
        + (4 + 12 * schema as u64)
        + (4 + 12 * base as u64)
        + rules(all_rules)
        + rules(my_rules)
        + 1
        + owner
        + assignment
}

/// Analyze one **concrete** strategy against a prepared planning base:
/// partition for real (the same partitioner the runtime uses), shadow
/// the result into [`PlanInputs`], and run the OWL011–OWL016 pass.
pub fn analyze_strategy(
    base: &PlanningBase,
    dict: &Dictionary,
    k: usize,
    strategy: &PartitioningStrategy,
) -> Result<PlanReport, RunError> {
    let context = context_of(strategy)?;
    let mut opts = LintOptions::for_context(context);
    opts.predicate_counts = Some(base.hist.clone());
    let cost = plan_cost_model();
    let label = strategy.label().to_string();

    // A deny-level rule-base finding makes the plan unsound regardless
    // of cost — skip the (possibly expensive) partitioning entirely and
    // let the analyzer report infeasibility.
    if owlpar_lint::lint_rules(&base.all_rules, &opts).has_deny() {
        let inputs = PlanInputs {
            strategy: label,
            k,
            schema_triples: base.schema.len(),
            base_sizes: Vec::new(),
            total_base: base.instance.len(),
            route: RouteModel::Data { cross_fraction: 0.0 },
            productions: Some(base.productions.clone()),
            exchange_discount: 1.0,
            setup_bytes: None,
            setup_v1_bytes: None,
            cost,
        };
        return Ok(analyze_plan(&base.all_rules, &opts, &inputs));
    }

    let PartitionParts {
        bases,
        rules_per_worker,
        routing,
        quality,
        edge_cut: _,
    } = build_partitions(
        strategy,
        k,
        &base.all_rules,
        &base.instance,
        dict,
        base.rdf_type,
        Some(&base.hist),
    )?;

    let route = match routing.first() {
        // A single worker owns everything: no exchange, whatever the
        // partition quality claims.
        Some(Routing::Data { .. }) | None => RouteModel::Data {
            cross_fraction: if k == 1 {
                0.0
            } else {
                data_cross_fraction(quality.as_ref())
            },
        },
        Some(Routing::Rule { partitions, .. }) => RouteModel::Rule {
            assignment: partitions.assignment.clone(),
        },
        Some(Routing::Hybrid {
            groups,
            data_shards,
            ..
        }) => RouteModel::Hybrid {
            cross_fraction: if k == 1 {
                0.0
            } else {
                hybrid_cross_fraction(quality.as_ref())
            },
            groups_assignment: groups.assignment.clone(),
            data_shards: *data_shards as usize,
        },
    };
    let (owner_pairs, assignment_len, routing_entries) = match routing.first() {
        Some(Routing::Data { owner }) => (owner.len() as u64, 0, owner.len() as u64),
        Some(Routing::Rule { partitions, .. }) => {
            let n = partitions.assignment.len() as u64;
            (0, n, n)
        }
        Some(Routing::Hybrid { owner, groups, .. }) => {
            let o = owner.len() as u64;
            let a = groups.assignment.len() as u64;
            (o, a, o + a)
        }
        None => (0, 0, 0),
    };

    // Price the setup phase with the real triple-block encoding.
    let schema_block = encode_triple_block(&base.schema).len() as u64;
    let mut setup = 0u64;
    let mut setup_v1 = 0u64;
    for (w, b) in bases.iter().enumerate() {
        let base_block = encode_triple_block(b).len() as u64;
        setup += setup_bytes_v2(
            schema_block,
            base_block,
            &base.all_rules,
            rules_per_worker[w].len(),
            routing_entries,
            cost.frame_overhead,
        );
        setup_v1 += setup_bytes_v1(
            base.schema.len(),
            b.len(),
            &base.all_rules,
            &rules_per_worker[w],
            owner_pairs,
            assignment_len,
        );
    }

    let inputs = PlanInputs {
        strategy: label,
        k,
        schema_triples: base.schema.len(),
        base_sizes: bases.iter().map(Vec::len).collect(),
        total_base: base.instance.len(),
        route,
        productions: Some(base.productions.clone()),
        exchange_discount: EXCHANGE_DEDUP_DISCOUNT,
        setup_bytes: Some(setup),
        setup_v1_bytes: Some(setup_v1),
        cost,
    };
    Ok(analyze_plan(&base.all_rules, &opts, &inputs))
}

/// Structure-only analysis for a bare rule-base (no KB at hand): loads
/// fall back to uniform shares, traffic to histogram-free weights, and
/// no wire-byte estimates are produced. This is what `owlpar plan`
/// runs on a `.rules` file — enough to catch infeasible contexts,
/// idle-worker skew and recursive exchange before any data exists.
pub fn analyze_rules_only(
    rules: &[Rule],
    k: usize,
    strategy: &PartitioningStrategy,
) -> Result<PlanReport, RunError> {
    let context = context_of(strategy)?;
    let opts = LintOptions::for_context(context);
    let route = match strategy {
        PartitioningStrategy::Data(_) => RouteModel::Data {
            cross_fraction: DEFAULT_CROSS_FRACTION,
        },
        PartitioningStrategy::Rule { .. } => {
            let rp = partition_rules(rules, k, None, &PartitionOptions::default());
            RouteModel::Rule {
                assignment: rp.assignment,
            }
        }
        PartitioningStrategy::Hybrid { rule_groups } => {
            let g = *rule_groups;
            if g < 1 || !k.is_multiple_of(g) {
                return Err(RunError::config(format!(
                    "rule_groups ({g}) must divide k ({k})"
                )));
            }
            let rp = partition_rules(rules, g, None, &PartitionOptions::default());
            RouteModel::Hybrid {
                cross_fraction: DEFAULT_CROSS_FRACTION,
                groups_assignment: rp.assignment,
                data_shards: k / g,
            }
        }
        PartitioningStrategy::Auto => {
            return Err(RunError::config(
                "cannot analyze the auto strategy itself; analyze its candidates",
            ))
        }
    };
    let inputs = PlanInputs {
        strategy: strategy.label().to_string(),
        k,
        schema_triples: 0,
        base_sizes: Vec::new(),
        total_base: 0,
        route,
        productions: None,
        exchange_discount: 1.0,
        setup_bytes: None,
        setup_v1_bytes: None,
        cost: plan_cost_model(),
    };
    Ok(analyze_plan(rules, &opts, &inputs))
}

/// The outcome of `--strategy auto`: the chosen strategy, its report,
/// and every candidate's report (for the comparison table).
pub struct AutoSelection {
    /// The argmin-cost deny-free strategy.
    pub strategy: PartitioningStrategy,
    /// Its plan report.
    pub report: PlanReport,
    /// All candidates' reports, in [`auto_candidates`] order.
    pub all: Vec<PlanReport>,
    /// Index of the chosen report within `all`.
    pub chosen: usize,
}

/// Score every candidate strategy and select the argmin-cost plan with
/// no deny-level diagnostics. Errors with [`RunError::Plan`] — the
/// non-overridable pre-spawn refusal — when no candidate survives.
pub fn select_auto(
    base: &PlanningBase,
    dict: &Dictionary,
    k: usize,
) -> Result<AutoSelection, RunError> {
    let candidates = auto_candidates(k);
    let mut reports = Vec::with_capacity(candidates.len());
    for c in &candidates {
        reports.push(analyze_strategy(base, dict, k, c)?);
    }
    let chosen = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.has_deny())
        .min_by(|a, b| a.1.total_cost.total_cmp(&b.1.total_cost))
        .map(|(i, _)| i);
    match chosen {
        Some(i) => Ok(AutoSelection {
            strategy: candidates[i].clone(),
            report: reports[i].clone(),
            all: reports,
            chosen: i,
        }),
        None => {
            let deny = reports.iter().map(|r| r.deny_count()).sum();
            let detail = reports
                .iter()
                .map(|r| {
                    let findings = r
                        .diagnostics
                        .iter()
                        .filter(|d| d.severity == owlpar_lint::Severity::Deny)
                        .map(|d| format!("{} {}", d.code.id(), d.message))
                        .collect::<Vec<_>>()
                        .join("; ");
                    format!("{}: {}", r.strategy, if findings.is_empty() {
                        "infeasible".to_string()
                    } else {
                        findings
                    })
                })
                .collect::<Vec<_>>()
                .join(" | ");
            Err(RunError::Plan {
                candidates: reports.iter().map(|r| r.strategy.clone()).collect(),
                deny,
                detail,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_datagen::{generate_lubm, LubmConfig};

    fn lubm_base() -> (PlanningBase, Dictionary) {
        let mut g = generate_lubm(&LubmConfig::mini(2));
        let base = PlanningBase::compile(&mut g, &[]);
        (base, g.dict)
    }

    #[test]
    fn productions_do_not_charge_type_rules_the_whole_census() {
        let (base, _) = lubm_base();
        let type_count = base
            .rdf_type
            .and_then(|t| base.hist.get(&t).copied())
            .unwrap_or(0);
        assert!(type_count > 50, "LUBM has a real type census");
        // At least one rule's estimate must be far below the census —
        // the min-body-atom bound is doing its job.
        assert!(base
            .productions
            .iter()
            .any(|&p| p > 0 && (p as usize) < type_count / 4));
    }

    #[test]
    fn all_candidates_analyze_feasibly_on_lubm() {
        let (base, dict) = lubm_base();
        for strategy in auto_candidates(4) {
            let r = analyze_strategy(&base, &dict, 4, &strategy).expect("analyzable");
            assert!(r.feasible, "{} infeasible", r.strategy);
            assert!(r.total_cost.is_finite());
            assert!(r.setup_bytes > 0);
            assert_eq!(r.workers.len(), 4);
        }
    }

    #[test]
    fn auto_selects_argmin_cost() {
        let (base, dict) = lubm_base();
        let sel = select_auto(&base, &dict, 2).expect("a viable plan exists");
        let min = sel
            .all
            .iter()
            .filter(|r| !r.has_deny())
            .map(|r| r.total_cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(sel.report.total_cost, min);
        assert_eq!(sel.all[sel.chosen].strategy, sel.report.strategy);
        // Rule partitioning replicates the whole base to every worker;
        // on LUBM the data plan's shipped volume is strictly smaller, so
        // auto must not pick rule here.
        assert_eq!(sel.report.strategy, "data");
    }

    #[test]
    fn rules_only_mode_denies_skewed_rule_plan() {
        // 3 rules over k = 8: at least 5 idle workers — a majority, so
        // OWL015 escalates to deny even without any KB.
        use owlpar_datalog::ast::build::{atom, c, v};
        let mk = |name: &str, p_in: u32, p_out: u32| {
            Rule::new(
                name,
                atom(v(0), c(owlpar_rdf::NodeId(p_out)), v(1)),
                vec![atom(v(0), c(owlpar_rdf::NodeId(p_in)), v(1))],
            )
            .unwrap()
        };
        let rules = vec![mk("a", 10, 11), mk("b", 11, 12), mk("c", 12, 13)];
        let r = analyze_rules_only(&rules, 8, &PartitioningStrategy::rule()).unwrap();
        assert!(r.has_deny());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == owlpar_lint::LintCode::IdleWorkers));
    }

    #[test]
    fn auto_resolution_is_rejected_as_input() {
        let (base, dict) = lubm_base();
        let err = analyze_strategy(&base, &dict, 2, &PartitioningStrategy::Auto).unwrap_err();
        assert!(matches!(err, RunError::Config { .. }));
    }
}
