//! The length-prefixed frame codec shared by every byte stream in the
//! system.
//!
//! A *frame* is a little-endian `u32` byte length followed by that many
//! body bytes; the CRC variant inserts a CRC-32 (IEEE) of the body
//! between the length and the body:
//!
//! ```text
//! frame     := len:u32 body{len}
//! crc_frame := len:u32 crc32(body):u32 body{len}
//! ```
//!
//! Every length field is validated through [`check_payload_bounds`] —
//! the same check the shared-file transport applies to its message files
//! — *before* any allocation happens, so a zero-length or absurd length
//! is a typed [`FrameError`], never an OOM or a busy-loop, and the
//! decoder never panics on any input.
//!
//! Consumers:
//!
//! * `owlpar-serve` — plain frames on its client protocol (the body
//!   grammar lives in `serve::wire`);
//! * `owlpar-net` — CRC frames on the cluster transport, where a triple
//!   batch crossing a real network deserves end-to-end corruption
//!   detection (TCP's 16-bit checksum is famously leaky at scale).
//!
//! # Compact triple blocks
//!
//! This module also owns the *compact triple block* — the wire encoding
//! of a triple **set** used by every cluster frame that moves bulk data
//! (`Setup`, `Triples`, `Deliver`, `Final` and their chunked variants).
//! Triples are sorted SPO (the stores already iterate in sorted order),
//! then delta-encoded with LEB128 varints:
//!
//! ```text
//! block      := count:varint [triple0 delta*]        (count triples)
//! triple0    := s:varint p:varint o:varint           (absolute)
//! delta      := ds:varint rest
//! rest       := p:varint o:varint                    (ds > 0: absolute)
//!             | dp:varint o:varint                   (ds = 0, dp > 0)
//!             | 0:varint  do:varint                  (ds = dp = 0, do ≥ 1)
//! ```
//!
//! Sorted real-world id streams make the deltas tiny — 12 bytes per raw
//! triple shrink to ~3–4 — and the format is **canonical**: strictly
//! ascending by construction, so a block with a zero final delta (a
//! duplicate) or an id overflow is a typed [`TripleBlockError`], never a
//! silently different set. Deltas are non-negative by construction, so a
//! *descending* sequence is unrepresentable — the decoder enforces
//! strict ascent as a grammar property, not a runtime scan. Truncation
//! at any byte offset is likewise a typed error: the count prefix is
//! bounds-checked against the minimum bytes-per-triple before any
//! allocation, and every varint read is bounds-checked against the
//! buffer.

use crate::comm::{check_payload_bounds, PayloadBoundsError};
use crate::durable::crc32;
use owlpar_rdf::{NodeId, Triple};
use std::io::{Read, Write};

/// Why a frame could not be written or read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The claimed or actual body length is outside the shared payload
    /// bounds.
    Bounds(PayloadBoundsError),
    /// The body's CRC-32 does not match the header (CRC frames only):
    /// the bytes were damaged in flight and the stream can no longer be
    /// trusted.
    Checksum {
        /// CRC carried by the header.
        expected: u32,
        /// CRC of the body actually received.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame IO error: {e}"),
            FrameError::Bounds(b) => write!(f, "frame length rejected: {b}"),
            FrameError::Checksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, body is {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Bounds(b) => Some(b),
            FrameError::Checksum { .. } => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<PayloadBoundsError> for FrameError {
    fn from(e: PayloadBoundsError) -> Self {
        FrameError::Bounds(e)
    }
}

/// Write one plain frame (`len | body`).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    check_payload_bounds(body.len() as u64)?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one plain frame, validating the claimed length before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as u64;
    check_payload_bounds(len)?;
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Write one CRC frame (`len | crc32(body) | body`).
pub fn write_crc_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    check_payload_bounds(body.len() as u64)?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(body).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one CRC frame, validating the claimed length before allocating
/// and the checksum after reading. A mismatch means the stream carried
/// damaged bytes — the caller must treat the connection as dead, because
/// there is no way to resynchronize a corrupted length-prefixed stream.
pub fn read_crc_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    check_payload_bounds(len)?;
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let actual = crc32(&body);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    Ok(body)
}

// ---------------------------------------------------------------------
// compact triple blocks
// ---------------------------------------------------------------------

/// Why a compact triple block could not be decoded. Every variant names
/// the byte offset (or triple index) where the grammar broke, so a
/// protocol layer can report *where* a stream went bad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleBlockError {
    /// The buffer ended before the block did (includes a count prefix
    /// that claims more triples than the remaining bytes could encode).
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A varint ran past 5 bytes or past the 32-bit range, or a delta
    /// pushed an id beyond `u32::MAX`.
    Overflow {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// The block encodes a duplicate triple (an all-zero delta). The
    /// format cannot express a descent, so this is the only way a block
    /// can fail to be strictly ascending.
    NonMonotone {
        /// Index of the offending triple within the block.
        index: usize,
    },
}

impl std::fmt::Display for TripleBlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripleBlockError::Truncated { offset } => {
                write!(f, "triple block truncated at byte {offset}")
            }
            TripleBlockError::Overflow { offset } => {
                write!(f, "triple block varint overflow at byte {offset}")
            }
            TripleBlockError::NonMonotone { index } => {
                write!(f, "triple block repeats triple {index} (zero delta)")
            }
        }
    }
}

impl std::error::Error for TripleBlockError {}

/// Append `v` as a LEB128 varint (1–5 bytes for a `u32`).
pub fn put_varint32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from `buf` at `pos`. Returns the value and the
/// new position.
pub fn get_varint32(buf: &[u8], pos: usize) -> Result<(u32, usize), TripleBlockError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    let mut at = pos;
    loop {
        let &byte = buf
            .get(at)
            .ok_or(TripleBlockError::Truncated { offset: at })?;
        let payload = u32::from(byte & 0x7f);
        // The 5th byte of a u32 varint may only carry 4 bits.
        if shift == 28 && payload > 0x0f {
            return Err(TripleBlockError::Overflow { offset: pos });
        }
        v |= payload << shift;
        at += 1;
        if byte & 0x80 == 0 {
            return Ok((v, at));
        }
        shift += 7;
        if shift > 28 {
            return Err(TripleBlockError::Overflow { offset: pos });
        }
    }
}

/// Cheapest possible encoding of one triple: three 1-byte varints.
const MIN_BYTES_PER_TRIPLE: u64 = 3;

fn is_strictly_sorted(triples: &[Triple]) -> bool {
    triples.windows(2).all(|w| w[0] < w[1])
}

/// Encode a set of triples as a compact block. The input is treated as a
/// **set**: it is sorted (SPO) and deduplicated if it is not already
/// strictly ascending, and [`decode_triple_block`] returns the sorted
/// sequence. Callers that pass pre-sorted data (store iterators, chunk
/// slices of a sorted store) pay no copy.
pub fn encode_triple_block(triples: &[Triple]) -> Vec<u8> {
    let mut owned;
    let sorted: &[Triple] = if is_strictly_sorted(triples) {
        triples
    } else {
        owned = triples.to_vec();
        owned.sort_unstable();
        owned.dedup();
        &owned
    };
    let mut out = Vec::with_capacity(5 + sorted.len() * 4);
    put_varint32(&mut out, sorted.len() as u32);
    let mut prev: Option<Triple> = None;
    for t in sorted {
        match prev {
            None => {
                put_varint32(&mut out, t.s.0);
                put_varint32(&mut out, t.p.0);
                put_varint32(&mut out, t.o.0);
            }
            Some(p) => {
                let ds = t.s.0 - p.s.0;
                put_varint32(&mut out, ds);
                if ds > 0 {
                    put_varint32(&mut out, t.p.0);
                    put_varint32(&mut out, t.o.0);
                } else {
                    let dp = t.p.0 - p.p.0;
                    put_varint32(&mut out, dp);
                    if dp > 0 {
                        put_varint32(&mut out, t.o.0);
                    } else {
                        put_varint32(&mut out, t.o.0 - p.o.0);
                    }
                }
            }
        }
        prev = Some(*t);
    }
    out
}

/// Decode a compact triple block from the front of `bytes`. Returns the
/// strictly ascending triples and the number of bytes consumed (blocks
/// are self-delimiting, so callers can embed them mid-message). The
/// claimed count is validated against the minimum encodable size
/// *before* any allocation.
pub fn decode_triple_block(bytes: &[u8]) -> Result<(Vec<Triple>, usize), TripleBlockError> {
    let (count, mut pos) = get_varint32(bytes, 0)?;
    let count = count as usize;
    let remaining = (bytes.len() - pos) as u64;
    if (count as u64).saturating_mul(MIN_BYTES_PER_TRIPLE) > remaining {
        return Err(TripleBlockError::Truncated { offset: bytes.len() });
    }
    // Cap the up-front reservation: a crafted count can claim at most
    // remaining/3 triples (checked above), but growing past 1M lazily
    // keeps the allocation proportional to bytes actually decoded.
    let mut out: Vec<Triple> = Vec::with_capacity(count.min(1 << 20));
    let overflow = |offset: usize| TripleBlockError::Overflow { offset };
    for index in 0..count {
        let t = match out.last() {
            None => {
                let (s, p1) = get_varint32(bytes, pos)?;
                let (p, p2) = get_varint32(bytes, p1)?;
                let (o, p3) = get_varint32(bytes, p2)?;
                pos = p3;
                Triple::new(NodeId(s), NodeId(p), NodeId(o))
            }
            Some(prev) => {
                let at = pos;
                let (ds, p1) = get_varint32(bytes, pos)?;
                let s = prev.s.0.checked_add(ds).ok_or_else(|| overflow(at))?;
                if ds > 0 {
                    let (p, p2) = get_varint32(bytes, p1)?;
                    let (o, p3) = get_varint32(bytes, p2)?;
                    pos = p3;
                    Triple::new(NodeId(s), NodeId(p), NodeId(o))
                } else {
                    let (dp, p2) = get_varint32(bytes, p1)?;
                    let p = prev.p.0.checked_add(dp).ok_or_else(|| overflow(p1))?;
                    if dp > 0 {
                        let (o, p3) = get_varint32(bytes, p2)?;
                        pos = p3;
                        Triple::new(NodeId(s), NodeId(p), NodeId(o))
                    } else {
                        let (dd, p3) = get_varint32(bytes, p2)?;
                        if dd == 0 {
                            return Err(TripleBlockError::NonMonotone { index });
                        }
                        let o = prev.o.0.checked_add(dd).ok_or_else(|| overflow(p2))?;
                        pos = p3;
                        Triple::new(NodeId(s), NodeId(p), NodeId(o))
                    }
                }
            }
        };
        out.push(t);
    }
    Ok((out, pos))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::comm::MAX_PAYLOAD_BYTES;

    #[test]
    fn plain_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"world!");
    }

    #[test]
    fn crc_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"twelve bytes").unwrap();
        write_crc_frame(&mut wire, &[0u8; 64]).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_crc_frame(&mut r).unwrap(), b"twelve bytes");
        assert_eq!(read_crc_frame(&mut r).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn zero_length_rejected_on_both_sides() {
        for writer in [write_frame, write_crc_frame] {
            let mut sink = Vec::new();
            assert!(matches!(
                writer(&mut sink, &[]),
                Err(FrameError::Bounds(PayloadBoundsError::Empty))
            ));
        }
        let wire = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(FrameError::Bounds(_))
        ));
        let wire = [0u8; 8]; // len 0, crc 0
        assert!(matches!(
            read_crc_frame(&mut &wire[..]),
            Err(FrameError::Bounds(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0xff; 8]);
        assert!(matches!(
            read_frame(&mut &wire.clone()[..]),
            Err(FrameError::Bounds(PayloadBoundsError::Oversized { .. }))
        ));
        assert!(matches!(
            read_crc_frame(&mut &wire[..]),
            Err(FrameError::Bounds(PayloadBoundsError::Oversized { .. }))
        ));
        assert!(u64::from(u32::MAX) > MAX_PAYLOAD_BYTES, "test premise");
    }

    #[test]
    fn torn_frame_is_io_error_not_panic() {
        // A frame whose stream ends mid-body: the torn tail a crashed
        // peer leaves behind.
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"whole frame body").unwrap();
        for cut in 1..wire.len() {
            let torn = &wire[..cut];
            match read_crc_frame(&mut &torn[..]) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
                }
                other => panic!("cut at {cut}: expected EOF error, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_body_bit_flip_is_caught_by_the_crc() {
        let body = b"the quick brown fox".to_vec();
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, &body).unwrap();
        for byte in 8..wire.len() {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        read_crc_frame(&mut &mutated[..]),
                        Err(FrameError::Checksum { .. })
                    ),
                    "body flip at {byte}.{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn crc_header_flips_fail_typed() {
        // Flips in the length or CRC header must also surface as typed
        // errors (bounds, checksum, or EOF) — never a panic or a hang on
        // this finite input.
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"abc").unwrap();
        for byte in 0..8 {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[byte] ^= 1 << bit;
                assert!(read_crc_frame(&mut &mutated[..]).is_err(), "flip at {byte}.{bit}");
            }
        }
    }

    // --- compact triple blocks ---------------------------------------

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    /// Deterministic xorshift so the property sweep needs no external
    /// crates and reproduces bit-for-bit.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_set(seed: u64, n: usize, id_space: u32) -> Vec<Triple> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut v: Vec<Triple> = (0..n)
            .map(|_| {
                t(
                    (xorshift(&mut state) % u64::from(id_space)) as u32,
                    (xorshift(&mut state) % u64::from(id_space.min(64))) as u32,
                    (xorshift(&mut state) % u64::from(id_space)) as u32,
                )
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn varint_roundtrip_and_bounds() {
        for v in [0u32, 1, 127, 128, 16383, 16384, 1 << 21, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            put_varint32(&mut buf, v);
            assert!(buf.len() <= 5);
            assert_eq!(get_varint32(&buf, 0).unwrap(), (v, buf.len()), "{v}");
        }
        // A 5th byte carrying more than 4 payload bits overflows u32.
        let too_big = [0xff, 0xff, 0xff, 0xff, 0x10];
        assert!(matches!(
            get_varint32(&too_big, 0),
            Err(TripleBlockError::Overflow { .. })
        ));
        // All-continuation bytes never terminate: overflow, not a hang.
        let runaway = [0x80; 6];
        assert!(matches!(
            get_varint32(&runaway, 0),
            Err(TripleBlockError::Overflow { .. })
        ));
        assert!(matches!(
            get_varint32(&[], 0),
            Err(TripleBlockError::Truncated { offset: 0 })
        ));
    }

    #[test]
    fn compact_block_roundtrips_across_seeds_and_matches_raw() {
        for seed in 0..40u64 {
            let n = (seed as usize % 97) * 7; // includes 0
            let set = random_set(seed, n, 10_000);
            let block = encode_triple_block(&set);
            let (back, used) = decode_triple_block(&block).unwrap();
            assert_eq!(used, block.len(), "seed {seed}: block is self-delimiting");
            assert_eq!(back, set, "seed {seed}: lossless");
            // The raw encoding of the same set is 12 bytes/triple; the
            // compact block must never exceed raw + its count prefix,
            // and beats it soundly on clustered ids.
            assert!(
                block.len() <= 5 + set.len() * 12,
                "seed {seed}: {} compact vs {} raw",
                block.len(),
                set.len() * 12
            );
        }
    }

    #[test]
    fn compact_block_sorts_and_dedups_unsorted_input() {
        let messy = vec![t(9, 1, 1), t(3, 2, 2), t(9, 1, 1), t(3, 2, 1)];
        let (back, _) = decode_triple_block(&encode_triple_block(&messy)).unwrap();
        assert_eq!(back, vec![t(3, 2, 1), t(3, 2, 2), t(9, 1, 1)]);
    }

    #[test]
    fn compact_block_dense_run_is_near_one_byte_per_triple() {
        // A store-like sorted run with tiny deltas: the case the cluster
        // ships constantly. 3 bytes/triple is the format's floor.
        let run: Vec<Triple> = (0..10_000u32).map(|i| t(i / 8, i % 4, i)).collect();
        let mut sorted = run.clone();
        sorted.sort_unstable();
        let block = encode_triple_block(&sorted);
        assert!(
            block.len() < sorted.len() * 4,
            "{} bytes for {} triples",
            block.len(),
            sorted.len()
        );
    }

    #[test]
    fn compact_block_truncation_at_every_offset_is_typed() {
        let set = random_set(7, 50, 1 << 20);
        let block = encode_triple_block(&set);
        for cut in 0..block.len() {
            match decode_triple_block(&block[..cut]) {
                Err(TripleBlockError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn compact_block_duplicate_is_rejected() {
        // Hand-craft a block whose second triple repeats the first: the
        // only non-monotone sequence the grammar can express.
        let mut block = Vec::new();
        put_varint32(&mut block, 2); // two triples
        put_varint32(&mut block, 5); // (5, 6, 7)
        put_varint32(&mut block, 6);
        put_varint32(&mut block, 7);
        put_varint32(&mut block, 0); // ds = dp = do = 0 → duplicate
        put_varint32(&mut block, 0);
        put_varint32(&mut block, 0);
        assert_eq!(
            decode_triple_block(&block),
            Err(TripleBlockError::NonMonotone { index: 1 })
        );
    }

    #[test]
    fn compact_block_id_overflow_is_rejected() {
        // First triple at the top of the id space, then a delta that
        // would wrap s past u32::MAX.
        let mut block = Vec::new();
        put_varint32(&mut block, 2);
        put_varint32(&mut block, u32::MAX);
        put_varint32(&mut block, 0);
        put_varint32(&mut block, 0);
        put_varint32(&mut block, 1); // ds = 1 wraps
        put_varint32(&mut block, 0);
        put_varint32(&mut block, 0);
        assert!(matches!(
            decode_triple_block(&block),
            Err(TripleBlockError::Overflow { .. })
        ));
    }

    #[test]
    fn compact_block_overlong_count_is_truncation_before_allocation() {
        let mut block = Vec::new();
        put_varint32(&mut block, u32::MAX); // claims 4G triples
        block.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            decode_triple_block(&block),
            Err(TripleBlockError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_block_is_one_byte() {
        let block = encode_triple_block(&[]);
        assert_eq!(block, vec![0]);
        assert_eq!(decode_triple_block(&block).unwrap(), (Vec::new(), 1));
    }

    #[test]
    fn plain_and_crc_frames_are_not_interchangeable() {
        // A CRC frame read as a plain frame yields a different body; a
        // plain frame read as a CRC frame fails its checksum (or EOF) —
        // the two stream dialects cannot be silently confused.
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"payload").unwrap();
        let as_plain = read_frame(&mut &wire[..]).unwrap();
        assert_ne!(as_plain, b"payload");
        let mut wire2 = Vec::new();
        write_frame(&mut wire2, b"payload").unwrap();
        assert!(read_crc_frame(&mut &wire2[..]).is_err());
    }
}
