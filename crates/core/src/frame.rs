//! The length-prefixed frame codec shared by every byte stream in the
//! system.
//!
//! A *frame* is a little-endian `u32` byte length followed by that many
//! body bytes; the CRC variant inserts a CRC-32 (IEEE) of the body
//! between the length and the body:
//!
//! ```text
//! frame     := len:u32 body{len}
//! crc_frame := len:u32 crc32(body):u32 body{len}
//! ```
//!
//! Every length field is validated through [`check_payload_bounds`] —
//! the same check the shared-file transport applies to its message files
//! — *before* any allocation happens, so a zero-length or absurd length
//! is a typed [`FrameError`], never an OOM or a busy-loop, and the
//! decoder never panics on any input.
//!
//! Consumers:
//!
//! * `owlpar-serve` — plain frames on its client protocol (the body
//!   grammar lives in `serve::wire`);
//! * `owlpar-net` — CRC frames on the cluster transport, where a triple
//!   batch crossing a real network deserves end-to-end corruption
//!   detection (TCP's 16-bit checksum is famously leaky at scale).

use crate::comm::{check_payload_bounds, PayloadBoundsError};
use crate::durable::crc32;
use std::io::{Read, Write};

/// Why a frame could not be written or read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The claimed or actual body length is outside the shared payload
    /// bounds.
    Bounds(PayloadBoundsError),
    /// The body's CRC-32 does not match the header (CRC frames only):
    /// the bytes were damaged in flight and the stream can no longer be
    /// trusted.
    Checksum {
        /// CRC carried by the header.
        expected: u32,
        /// CRC of the body actually received.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame IO error: {e}"),
            FrameError::Bounds(b) => write!(f, "frame length rejected: {b}"),
            FrameError::Checksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, body is {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Bounds(b) => Some(b),
            FrameError::Checksum { .. } => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<PayloadBoundsError> for FrameError {
    fn from(e: PayloadBoundsError) -> Self {
        FrameError::Bounds(e)
    }
}

/// Write one plain frame (`len | body`).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    check_payload_bounds(body.len() as u64)?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one plain frame, validating the claimed length before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as u64;
    check_payload_bounds(len)?;
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Write one CRC frame (`len | crc32(body) | body`).
pub fn write_crc_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    check_payload_bounds(body.len() as u64)?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(body).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one CRC frame, validating the claimed length before allocating
/// and the checksum after reading. A mismatch means the stream carried
/// damaged bytes — the caller must treat the connection as dead, because
/// there is no way to resynchronize a corrupted length-prefixed stream.
pub fn read_crc_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    check_payload_bounds(len)?;
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let actual = crc32(&body);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::comm::MAX_PAYLOAD_BYTES;

    #[test]
    fn plain_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"world!");
    }

    #[test]
    fn crc_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"twelve bytes").unwrap();
        write_crc_frame(&mut wire, &[0u8; 64]).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_crc_frame(&mut r).unwrap(), b"twelve bytes");
        assert_eq!(read_crc_frame(&mut r).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn zero_length_rejected_on_both_sides() {
        for writer in [write_frame, write_crc_frame] {
            let mut sink = Vec::new();
            assert!(matches!(
                writer(&mut sink, &[]),
                Err(FrameError::Bounds(PayloadBoundsError::Empty))
            ));
        }
        let wire = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(FrameError::Bounds(_))
        ));
        let wire = [0u8; 8]; // len 0, crc 0
        assert!(matches!(
            read_crc_frame(&mut &wire[..]),
            Err(FrameError::Bounds(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0xff; 8]);
        assert!(matches!(
            read_frame(&mut &wire.clone()[..]),
            Err(FrameError::Bounds(PayloadBoundsError::Oversized { .. }))
        ));
        assert!(matches!(
            read_crc_frame(&mut &wire[..]),
            Err(FrameError::Bounds(PayloadBoundsError::Oversized { .. }))
        ));
        assert!(u64::from(u32::MAX) > MAX_PAYLOAD_BYTES, "test premise");
    }

    #[test]
    fn torn_frame_is_io_error_not_panic() {
        // A frame whose stream ends mid-body: the torn tail a crashed
        // peer leaves behind.
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"whole frame body").unwrap();
        for cut in 1..wire.len() {
            let torn = &wire[..cut];
            match read_crc_frame(&mut &torn[..]) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
                }
                other => panic!("cut at {cut}: expected EOF error, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_body_bit_flip_is_caught_by_the_crc() {
        let body = b"the quick brown fox".to_vec();
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, &body).unwrap();
        for byte in 8..wire.len() {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        read_crc_frame(&mut &mutated[..]),
                        Err(FrameError::Checksum { .. })
                    ),
                    "body flip at {byte}.{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn crc_header_flips_fail_typed() {
        // Flips in the length or CRC header must also surface as typed
        // errors (bounds, checksum, or EOF) — never a panic or a hang on
        // this finite input.
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"abc").unwrap();
        for byte in 0..8 {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[byte] ^= 1 << bit;
                assert!(read_crc_frame(&mut &mutated[..]).is_err(), "flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn plain_and_crc_frames_are_not_interchangeable() {
        // A CRC frame read as a plain frame yields a different body; a
        // plain frame read as a CRC frame fails its checksum (or EOF) —
        // the two stream dialects cannot be silently confused.
        let mut wire = Vec::new();
        write_crc_frame(&mut wire, b"payload").unwrap();
        let as_plain = read_frame(&mut &wire[..]).unwrap();
        assert_ne!(as_plain, b"payload");
        let mut wire2 = Vec::new();
        write_frame(&mut wire2, b"payload").unwrap();
        assert!(read_crc_frame(&mut &wire2[..]).is_err());
    }
}
