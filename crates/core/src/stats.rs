//! Per-worker and per-run instrumentation.
//!
//! The Fig. 2 experiment decomposes the parallel run into *reasoning*,
//! *IO* (inter-process communication), *synchronization* (waiting at the
//! round barrier) and *aggregation* (the master unioning the outputs).
//! Workers accumulate the first three; the master records the fourth.

use serde::Serialize;
use std::time::Duration;

/// Timing and volume counters for one worker.
///
/// `reason_time` and `io_time` are **thread CPU time** — what a dedicated
/// processor would spend — so the numbers stay meaningful when more
/// workers than cores share the host (see `crate::cputime`).
/// `sync_time` is *simulated*: per round, the gap between this worker's
/// CPU use and the slowest worker's (the barrier wait on a real cluster);
/// the master fills it in after the run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkerStats {
    /// Worker index.
    pub id: usize,
    /// CPU time spent inside the wrapped reasoner.
    pub reason_time: Duration,
    /// CPU time spent serializing/writing/reading/deserializing messages.
    pub io_time: Duration,
    /// Simulated barrier-wait time (filled by the master).
    pub sync_time: Duration,
    /// CPU time (reason + io) charged to each round, in round order.
    pub round_cpu: Vec<Duration>,
    /// Rounds executed (including the final empty round).
    pub rounds: usize,
    /// Triples this worker derived itself.
    pub derived: usize,
    /// Triples sent to other workers (with multiplicity).
    pub sent: usize,
    /// Triples received from other workers (pre-dedup).
    pub received: usize,
    /// Messages skipped with a report (corrupted/truncated/undecodable;
    /// see `owlpar_core::error::SkippedMessage`).
    pub skipped: usize,
    /// Transient IO failures absorbed by retrying.
    pub io_retries: usize,
    /// Final size of the worker's local store (base + schema + derived).
    pub output_size: usize,
}

impl WorkerStats {
    /// Total accounted time of this worker (CPU + simulated waits).
    pub fn total(&self) -> Duration {
        self.reason_time + self.io_time + self.sync_time
    }
}

/// Byte/frame/triple counters for one phase of a distributed run's wire
/// traffic (setup shipping, round exchange, final collection).
#[derive(Debug, Clone, Copy, Default, Serialize, PartialEq, Eq)]
pub struct WirePhase {
    /// Bytes that crossed the wire (frame headers included).
    pub bytes: u64,
    /// Frames exchanged.
    pub frames: u64,
    /// Triples carried inside those frames.
    pub triples: u64,
    /// What the **v1** wire format would have spent on the same logical
    /// transfer. For round/final phases this is the conservative floor
    /// `12 × triples` (v1 frame headers and counts excluded); for the
    /// setup phase it is the exact v1 `Setup` encoding — raw triples,
    /// 8-byte ownership pairs, both rule lists in full, re-shipped every
    /// run because v1 had no partition cache.
    pub v1_bytes: u64,
}

impl WirePhase {
    /// Record one frame of `bytes` carrying `triples` triples, that v1
    /// would have moved as `v1_bytes`.
    pub fn add(&mut self, bytes: u64, triples: u64, v1_bytes: u64) {
        self.bytes += bytes;
        self.frames += 1;
        self.triples += triples;
        self.v1_bytes += v1_bytes;
    }

    /// What the same triples would have cost at the raw 12-byte-per-triple
    /// record encoding, triples alone (no headers, no rules, no tables).
    pub fn raw_triple_bytes(&self) -> u64 {
        self.triples * 12
    }

    /// v1-equivalent over actual bytes; > 1.0 means the compact
    /// encoding is winning. 0 when nothing was sent.
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.v1_bytes as f64 / self.bytes as f64
        }
    }
}

/// One round's slice of the relay traffic, as observed at the master.
#[derive(Debug, Clone, Copy, Default, Serialize, PartialEq, Eq)]
pub struct WireRound {
    /// Round number (0-based, same numbering as `RoundDone`).
    pub round: u32,
    /// Exchange bytes relayed for this round, both directions, frame
    /// envelopes included.
    pub bytes: u64,
    /// Triples relayed for this round (counted once inbound, once on
    /// delivery — like the aggregate `rounds` phase).
    pub triples: u64,
}

/// Wire-traffic accounting for a whole cluster run, split by phase, as
/// observed at the master (the star topology's single vantage point: it
/// touches every frame once). Filled by the `owlpar-net` cluster master;
/// `None` on in-process runs.
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct WireBytes {
    /// Bootstrap shipping: `Setup` frames (partition + rules + routing).
    pub setup: WirePhase,
    /// Round exchange: `Triples` in, `Deliver`/`DeliverChunk` out.
    pub rounds: WirePhase,
    /// Final collection: `FinalChunk`/`Final` frames in.
    pub finals: WirePhase,
    /// Handshake and control traffic (`Hello`, `Welcome`, `CacheAdvert`,
    /// `RoundDone`, rejects).
    pub control_bytes: u64,
    /// Workers whose `Setup` shipped as a digest only (partition served
    /// from their local cache).
    pub cache_hits: u64,
    /// Workers whose `Setup` carried the full partition payload.
    pub cache_misses: u64,
    /// Per-round relay traffic. Handler threads account rounds
    /// concurrently, so the insertion order is arbitrary —
    /// [`WireBytes::to_json`] (and every consumer that cares) must sort
    /// by round, never trust the vector's order.
    pub per_round: Vec<WireRound>,
}

impl WireBytes {
    /// Every byte the master put on or took off the wire.
    pub fn total_bytes(&self) -> u64 {
        self.setup.bytes + self.rounds.bytes + self.finals.bytes + self.control_bytes
    }

    /// Raw-equivalent bytes for every triple moved, all phases.
    pub fn total_raw_triple_bytes(&self) -> u64 {
        self.setup.raw_triple_bytes()
            + self.rounds.raw_triple_bytes()
            + self.finals.raw_triple_bytes()
    }

    /// Every byte the v1 format would have spent on this run's
    /// `Setup`/`Triples`/`Deliver`/`Final` traffic (control traffic
    /// costs the same in both and is counted on both sides).
    pub fn total_v1_bytes(&self) -> u64 {
        self.setup.v1_bytes + self.rounds.v1_bytes + self.finals.v1_bytes + self.control_bytes
    }

    /// Whole-run compression ratio (v1-equivalent / actual, data phases
    /// and control overhead included on both sides).
    pub fn compression_ratio(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.total_v1_bytes() as f64 / total as f64
        }
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "wire: {} B total ({} setup, {} rounds, {} final, {} control), \
             {} triple(s) moved, {:.2}x vs v1 wire, cache {} hit(s) / {} miss(es)",
            self.total_bytes(),
            self.setup.bytes,
            self.rounds.bytes,
            self.finals.bytes,
            self.control_bytes,
            self.setup.triples + self.rounds.triples + self.finals.triples,
            self.compression_ratio(),
            self.cache_hits,
            self.cache_misses,
        )
    }

    /// Flat JSON object (stable key order, no serde dependency in
    /// binaries that hand-assemble their reports). `per_round` entries
    /// are emitted **sorted by round number** regardless of the order
    /// the concurrent handler threads pushed them in.
    pub fn to_json(&self) -> String {
        let mut per_round = self.per_round.clone();
        per_round.sort_unstable_by_key(|r| r.round);
        let per_round_json: Vec<String> = per_round
            .iter()
            .map(|r| {
                format!(
                    "{{\"round\":{},\"bytes\":{},\"triples\":{}}}",
                    r.round, r.bytes, r.triples
                )
            })
            .collect();
        format!(
            "{{\"setup_bytes\":{},\"setup_frames\":{},\"setup_triples\":{},\
             \"setup_v1_bytes\":{},\
             \"rounds_bytes\":{},\"rounds_frames\":{},\"rounds_triples\":{},\
             \"rounds_v1_bytes\":{},\
             \"final_bytes\":{},\"final_frames\":{},\"final_triples\":{},\
             \"final_v1_bytes\":{},\
             \"control_bytes\":{},\"total_bytes\":{},\"raw_triple_bytes\":{},\
             \"v1_total_bytes\":{},\
             \"compression_ratio\":{:.4},\"cache_hits\":{},\"cache_misses\":{},\
             \"per_round\":[{}]}}",
            self.setup.bytes,
            self.setup.frames,
            self.setup.triples,
            self.setup.v1_bytes,
            self.rounds.bytes,
            self.rounds.frames,
            self.rounds.triples,
            self.rounds.v1_bytes,
            self.finals.bytes,
            self.finals.frames,
            self.finals.triples,
            self.finals.v1_bytes,
            self.control_bytes,
            self.total_bytes(),
            self.total_raw_triple_bytes(),
            self.total_v1_bytes(),
            self.compression_ratio(),
            self.cache_hits,
            self.cache_misses,
            per_round_json.join(","),
        )
    }
}

/// The byte-cost constants the static plan analyzer uses, tied to this
/// module's `WireLedger` conventions so predicted and measured bytes are
/// commensurable:
///
/// * `frame_overhead` — the `len u32 | crc u32` framing every frame pays;
/// * `v1_triple_bytes` — [`WirePhase::raw_triple_bytes`]'s 12 B/triple
///   v1 floor;
/// * `round_triple_bytes` — measured v2 delta/varint cost of one triple
///   in a round batch (sorted blocks amortize to ~3.5 B on the bench KB);
/// * `deliver_frame_bytes` — fixed cost of an empty `Deliver` verdict
///   frame, paid per worker per round.
pub fn plan_cost_model() -> owlpar_lint::WireCostModel {
    owlpar_lint::WireCostModel {
        frame_overhead: 8,
        v1_triple_bytes: 12.0,
        round_triple_bytes: 3.5,
        deliver_frame_bytes: 18.0,
    }
}

/// Reconstruct the synchronous cluster's wall-clock from per-round,
/// per-worker CPU charges: each round lasts as long as its slowest
/// worker; a worker's sync time is the sum of its per-round slacks.
/// Returns (simulated makespan, per-worker sync).
pub fn simulate_rounds(workers: &[WorkerStats]) -> (Duration, Vec<Duration>) {
    let rounds = workers.iter().map(|w| w.round_cpu.len()).max().unwrap_or(0);
    let mut makespan = Duration::ZERO;
    let mut sync = vec![Duration::ZERO; workers.len()];
    for r in 0..rounds {
        let slowest = workers
            .iter()
            .map(|w| w.round_cpu.get(r).copied().unwrap_or_default())
            .max()
            .unwrap_or_default();
        makespan += slowest;
        for (i, w) in workers.iter().enumerate() {
            sync[i] += slowest - w.round_cpu.get(r).copied().unwrap_or_default();
        }
    }
    (makespan, sync)
}

/// Maximum per-phase durations across workers — the Fig. 2 convention
/// ("the figure shows the maximum values over the partitions").
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseBreakdown {
    /// Max reasoning time over workers.
    pub reason: Duration,
    /// Max IO time over workers.
    pub io: Duration,
    /// Max synchronization time over workers.
    pub sync: Duration,
    /// Master-side aggregation time.
    pub aggregation: Duration,
}

impl PhaseBreakdown {
    /// Fold worker stats into the max-per-phase view.
    pub fn from_workers(workers: &[WorkerStats], aggregation: Duration) -> Self {
        PhaseBreakdown {
            reason: workers.iter().map(|w| w.reason_time).max().unwrap_or_default(),
            io: workers.iter().map(|w| w.io_time).max().unwrap_or_default(),
            sync: workers.iter().map(|w| w.sync_time).max().unwrap_or_default(),
            aggregation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let w = WorkerStats {
            reason_time: Duration::from_millis(10),
            io_time: Duration::from_millis(5),
            sync_time: Duration::from_millis(1),
            ..WorkerStats::default()
        };
        assert_eq!(w.total(), Duration::from_millis(16));
    }

    #[test]
    fn breakdown_takes_maxima() {
        let workers = vec![
            WorkerStats {
                reason_time: Duration::from_millis(10),
                io_time: Duration::from_millis(1),
                ..WorkerStats::default()
            },
            WorkerStats {
                reason_time: Duration::from_millis(3),
                io_time: Duration::from_millis(9),
                ..WorkerStats::default()
            },
        ];
        let b = PhaseBreakdown::from_workers(&workers, Duration::from_millis(2));
        assert_eq!(b.reason, Duration::from_millis(10));
        assert_eq!(b.io, Duration::from_millis(9));
        assert_eq!(b.aggregation, Duration::from_millis(2));
    }

    #[test]
    fn empty_worker_list() {
        let b = PhaseBreakdown::from_workers(&[], Duration::ZERO);
        assert_eq!(b.reason, Duration::ZERO);
        let (makespan, sync) = simulate_rounds(&[]);
        assert_eq!(makespan, Duration::ZERO);
        assert!(sync.is_empty());
    }

    #[test]
    fn simulate_rounds_takes_per_round_maxima() {
        let w = |cpu: &[u64]| WorkerStats {
            round_cpu: cpu.iter().map(|&ms| Duration::from_millis(ms)).collect(),
            ..WorkerStats::default()
        };
        // round 0: max 10; round 1: max 8 → makespan 18
        let workers = vec![w(&[10, 3]), w(&[4, 8])];
        let (makespan, sync) = simulate_rounds(&workers);
        assert_eq!(makespan, Duration::from_millis(18));
        // worker 0 waits 0 + 5; worker 1 waits 6 + 0
        assert_eq!(sync[0], Duration::from_millis(5));
        assert_eq!(sync[1], Duration::from_millis(6));
    }

    #[test]
    fn wire_bytes_json_emits_per_round_entries_in_round_order() {
        // Handler threads push round entries concurrently, so the vector
        // can arrive in any order; the JSON must still be round-sorted.
        let wire = WireBytes {
            per_round: vec![
                WireRound { round: 2, bytes: 30, triples: 3 },
                WireRound { round: 0, bytes: 10, triples: 1 },
                WireRound { round: 1, bytes: 20, triples: 2 },
            ],
            ..WireBytes::default()
        };
        let json = wire.to_json();
        let expect = "\"per_round\":[{\"round\":0,\"bytes\":10,\"triples\":1},\
                      {\"round\":1,\"bytes\":20,\"triples\":2},\
                      {\"round\":2,\"bytes\":30,\"triples\":3}]"
            .replace(char::is_whitespace, "");
        assert!(
            json.replace(char::is_whitespace, "").contains(&expect),
            "per_round not emitted in round order: {json}"
        );
        // An empty per_round still emits the (empty) key, keeping the
        // object schema stable for downstream parsers.
        assert!(WireBytes::default().to_json().contains("\"per_round\":[]"));
    }

    #[test]
    fn simulate_rounds_handles_uneven_round_counts() {
        let w = |cpu: &[u64]| WorkerStats {
            round_cpu: cpu.iter().map(|&ms| Duration::from_millis(ms)).collect(),
            ..WorkerStats::default()
        };
        let workers = vec![w(&[10]), w(&[4, 8])];
        let (makespan, sync) = simulate_rounds(&workers);
        assert_eq!(makespan, Duration::from_millis(18));
        assert_eq!(sync[0], Duration::from_millis(8));
    }
}
