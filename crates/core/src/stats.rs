//! Per-worker and per-run instrumentation.
//!
//! The Fig. 2 experiment decomposes the parallel run into *reasoning*,
//! *IO* (inter-process communication), *synchronization* (waiting at the
//! round barrier) and *aggregation* (the master unioning the outputs).
//! Workers accumulate the first three; the master records the fourth.

use serde::Serialize;
use std::time::Duration;

/// Timing and volume counters for one worker.
///
/// `reason_time` and `io_time` are **thread CPU time** — what a dedicated
/// processor would spend — so the numbers stay meaningful when more
/// workers than cores share the host (see `crate::cputime`).
/// `sync_time` is *simulated*: per round, the gap between this worker's
/// CPU use and the slowest worker's (the barrier wait on a real cluster);
/// the master fills it in after the run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkerStats {
    /// Worker index.
    pub id: usize,
    /// CPU time spent inside the wrapped reasoner.
    pub reason_time: Duration,
    /// CPU time spent serializing/writing/reading/deserializing messages.
    pub io_time: Duration,
    /// Simulated barrier-wait time (filled by the master).
    pub sync_time: Duration,
    /// CPU time (reason + io) charged to each round, in round order.
    pub round_cpu: Vec<Duration>,
    /// Rounds executed (including the final empty round).
    pub rounds: usize,
    /// Triples this worker derived itself.
    pub derived: usize,
    /// Triples sent to other workers (with multiplicity).
    pub sent: usize,
    /// Triples received from other workers (pre-dedup).
    pub received: usize,
    /// Messages skipped with a report (corrupted/truncated/undecodable;
    /// see `owlpar_core::error::SkippedMessage`).
    pub skipped: usize,
    /// Transient IO failures absorbed by retrying.
    pub io_retries: usize,
    /// Final size of the worker's local store (base + schema + derived).
    pub output_size: usize,
}

impl WorkerStats {
    /// Total accounted time of this worker (CPU + simulated waits).
    pub fn total(&self) -> Duration {
        self.reason_time + self.io_time + self.sync_time
    }
}

/// Reconstruct the synchronous cluster's wall-clock from per-round,
/// per-worker CPU charges: each round lasts as long as its slowest
/// worker; a worker's sync time is the sum of its per-round slacks.
/// Returns (simulated makespan, per-worker sync).
pub fn simulate_rounds(workers: &[WorkerStats]) -> (Duration, Vec<Duration>) {
    let rounds = workers.iter().map(|w| w.round_cpu.len()).max().unwrap_or(0);
    let mut makespan = Duration::ZERO;
    let mut sync = vec![Duration::ZERO; workers.len()];
    for r in 0..rounds {
        let slowest = workers
            .iter()
            .map(|w| w.round_cpu.get(r).copied().unwrap_or_default())
            .max()
            .unwrap_or_default();
        makespan += slowest;
        for (i, w) in workers.iter().enumerate() {
            sync[i] += slowest - w.round_cpu.get(r).copied().unwrap_or_default();
        }
    }
    (makespan, sync)
}

/// Maximum per-phase durations across workers — the Fig. 2 convention
/// ("the figure shows the maximum values over the partitions").
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseBreakdown {
    /// Max reasoning time over workers.
    pub reason: Duration,
    /// Max IO time over workers.
    pub io: Duration,
    /// Max synchronization time over workers.
    pub sync: Duration,
    /// Master-side aggregation time.
    pub aggregation: Duration,
}

impl PhaseBreakdown {
    /// Fold worker stats into the max-per-phase view.
    pub fn from_workers(workers: &[WorkerStats], aggregation: Duration) -> Self {
        PhaseBreakdown {
            reason: workers.iter().map(|w| w.reason_time).max().unwrap_or_default(),
            io: workers.iter().map(|w| w.io_time).max().unwrap_or_default(),
            sync: workers.iter().map(|w| w.sync_time).max().unwrap_or_default(),
            aggregation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let w = WorkerStats {
            reason_time: Duration::from_millis(10),
            io_time: Duration::from_millis(5),
            sync_time: Duration::from_millis(1),
            ..WorkerStats::default()
        };
        assert_eq!(w.total(), Duration::from_millis(16));
    }

    #[test]
    fn breakdown_takes_maxima() {
        let workers = vec![
            WorkerStats {
                reason_time: Duration::from_millis(10),
                io_time: Duration::from_millis(1),
                ..WorkerStats::default()
            },
            WorkerStats {
                reason_time: Duration::from_millis(3),
                io_time: Duration::from_millis(9),
                ..WorkerStats::default()
            },
        ];
        let b = PhaseBreakdown::from_workers(&workers, Duration::from_millis(2));
        assert_eq!(b.reason, Duration::from_millis(10));
        assert_eq!(b.io, Duration::from_millis(9));
        assert_eq!(b.aggregation, Duration::from_millis(2));
    }

    #[test]
    fn empty_worker_list() {
        let b = PhaseBreakdown::from_workers(&[], Duration::ZERO);
        assert_eq!(b.reason, Duration::ZERO);
        let (makespan, sync) = simulate_rounds(&[]);
        assert_eq!(makespan, Duration::ZERO);
        assert!(sync.is_empty());
    }

    #[test]
    fn simulate_rounds_takes_per_round_maxima() {
        let w = |cpu: &[u64]| WorkerStats {
            round_cpu: cpu.iter().map(|&ms| Duration::from_millis(ms)).collect(),
            ..WorkerStats::default()
        };
        // round 0: max 10; round 1: max 8 → makespan 18
        let workers = vec![w(&[10, 3]), w(&[4, 8])];
        let (makespan, sync) = simulate_rounds(&workers);
        assert_eq!(makespan, Duration::from_millis(18));
        // worker 0 waits 0 + 5; worker 1 waits 6 + 0
        assert_eq!(sync[0], Duration::from_millis(5));
        assert_eq!(sync[1], Duration::from_millis(6));
    }

    #[test]
    fn simulate_rounds_handles_uneven_round_counts() {
        let w = |cpu: &[u64]| WorkerStats {
            round_cpu: cpu.iter().map(|&ms| Duration::from_millis(ms)).collect(),
            ..WorkerStats::default()
        };
        let workers = vec![w(&[10]), w(&[4, 8])];
        let (makespan, sync) = simulate_rounds(&workers);
        assert_eq!(makespan, Duration::from_millis(18));
        assert_eq!(sync[0], Duration::from_millis(8));
    }
}
