//! Configuration of a parallel reasoning run.

use crate::comm::CommMode;
use crate::fault::FaultPlan;
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::{MaterializationStrategy, Rule};
use owlpar_partition::multilevel::PartitionOptions;
use std::sync::Arc;
use std::time::Duration;

/// Which of the paper's two partitioning approaches to use, and with
/// which policy.
#[derive(Debug, Clone)]
pub enum PartitioningStrategy {
    /// Algorithm 1 — split the instance triples; every worker runs the
    /// complete rule-base.
    Data(DataPolicy),
    /// Algorithm 2 — split the rule-base; every worker holds the complete
    /// data.
    Rule {
        /// Weigh dependency edges with the dataset's predicate histogram.
        weighted: bool,
    },
    /// Hybrid (the paper's stated future work, after Shao/Bell/Hull):
    /// rules split into `rule_groups` groups, data split into
    /// `k / rule_groups` shards; requires `rule_groups` to divide `k`.
    Hybrid {
        /// Number of rule groups (`g`); data shards = `k / g`.
        rule_groups: usize,
    },
    /// Let the static plan analyzer pick: score the candidate strategies
    /// (`owlpar_core::plan::auto_candidates`) with the OWL011–OWL016
    /// cost model and run the argmin-cost deny-free plan. Refuses with
    /// [`RunError::Plan`](crate::error::RunError::Plan) — before any
    /// worker spawns — when every candidate has deny-level plan
    /// diagnostics; that refusal is not overridable.
    Auto,
}

/// Ownership policy for the data-partitioning approach (mirrors
/// `owlpar_partition::OwnershipPolicy`, minus the non-`Send` key closure).
#[derive(Debug, Clone)]
pub enum DataPolicy {
    /// Multilevel min-cut graph partitioning (METIS role).
    Graph(PartitionOptions),
    /// Streaming hash ownership.
    Hash {
        /// Hash seed.
        seed: u64,
    },
    /// Domain-specific (IRI-authority) grouping.
    Domain,
    /// Linear Deterministic Greedy streaming partitioning.
    Streaming,
}

impl PartitioningStrategy {
    /// Data partitioning with the graph policy and default options.
    pub fn data_graph() -> Self {
        PartitioningStrategy::Data(DataPolicy::Graph(PartitionOptions::default()))
    }

    /// Data partitioning with hash ownership.
    pub fn data_hash() -> Self {
        PartitioningStrategy::Data(DataPolicy::Hash { seed: 0xa5a5 })
    }

    /// Data partitioning with the domain-specific policy.
    pub fn data_domain() -> Self {
        PartitioningStrategy::Data(DataPolicy::Domain)
    }

    /// Data partitioning with LDG streaming ownership.
    pub fn data_streaming() -> Self {
        PartitioningStrategy::Data(DataPolicy::Streaming)
    }

    /// Unweighted rule partitioning.
    pub fn rule() -> Self {
        PartitioningStrategy::Rule { weighted: false }
    }

    /// Analyzer-selected strategy.
    pub fn auto() -> Self {
        PartitioningStrategy::Auto
    }

    /// Short family label (`data` / `rule` / `hybrid` / `auto`) — the
    /// name the CLIs and plan reports use.
    pub fn label(&self) -> &'static str {
        match self {
            PartitioningStrategy::Data(_) => "data",
            PartitioningStrategy::Rule { .. } => "rule",
            PartitioningStrategy::Hybrid { .. } => "hybrid",
            PartitioningStrategy::Auto => "auto",
        }
    }
}

/// Round synchronization discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundMode {
    /// Barrier-synchronized rounds — the paper's implementation.
    #[default]
    Barrier,
    /// Asynchronous: a worker "not wait\[s\] till all other partitions
    /// finish, but rather start\[s\] immediately using all the currently
    /// received tuples" (§VI-B). Channel transport only.
    Async,
}

/// What the master does when the pre-spawn lint gate finds a rule that is
/// not safe under the configured partitioning (a deny finding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnsafeRulePolicy {
    /// Refuse the run with [`RunError::Lint`](crate::error::RunError::Lint)
    /// before any worker spawns.
    #[default]
    Refuse,
    /// Fall back to full data replication (rule partitioning): every
    /// worker holds the complete data, so any join shape is evaluable.
    /// Structural denials (broken rules) still refuse — replication cannot
    /// fix a rule that is wrong everywhere.
    ReplicateData,
}

/// What the master does when a worker is lost mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultRecovery {
    /// Report the loss as a `RunError::Workers` and produce no closure.
    Fail,
    /// Data partitioning only: survivors drain cleanly, the master adopts
    /// the dead worker's base partition and re-closes serially — the
    /// recovered closure equals the serial closure (forward closure is
    /// monotonic). Other strategies fall back to failing.
    #[default]
    AdoptAndReclose,
}

/// Full configuration of a run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of partitions / workers.
    pub k: usize,
    /// Partitioning approach.
    pub strategy: PartitioningStrategy,
    /// Closure engine each worker wraps (paper: Jena's hybrid engine;
    /// default here: the backward per-resource emulation of it).
    pub materialization: MaterializationStrategy,
    /// Inter-partition transport.
    pub comm: CommMode,
    /// Barrier rounds (paper) or the async §VI-B variant.
    pub rounds: RoundMode,
    /// Injected faults for robustness testing (`None` = run clean).
    pub fault: Option<Arc<FaultPlan>>,
    /// Patience at the round barrier and for a round's collect; a worker
    /// waiting longer reports a structured timeout instead of hanging.
    pub round_timeout: Duration,
    /// Reaction to losing a worker.
    pub recovery: FaultRecovery,
    /// User-supplied rules evaluated alongside the compiled ontology
    /// rules. They pass through the same pre-spawn lint gate — this is
    /// how a rule-base that is *not* provably partition-safe reaches the
    /// master, since the compiler only emits single-join rules.
    pub extra_rules: Vec<Rule>,
    /// Reaction to a deny-level lint finding at startup.
    pub unsafe_rules: UnsafeRulePolicy,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            k: 2,
            strategy: PartitioningStrategy::data_graph(),
            materialization: MaterializationStrategy::BackwardJena(TableScope::PerQuery),
            comm: CommMode::Channel,
            rounds: RoundMode::Barrier,
            fault: None,
            round_timeout: Duration::from_secs(30),
            recovery: FaultRecovery::default(),
            extra_rules: Vec::new(),
            unsafe_rules: UnsafeRulePolicy::default(),
        }
    }
}

impl ParallelConfig {
    /// Convenience: same config with a different k.
    pub fn with_k(&self, k: usize) -> Self {
        ParallelConfig {
            k,
            ..self.clone()
        }
    }

    /// Convenience: fast forward-chaining materialization (used by tests
    /// and the correctness suite; the speedup experiments use the
    /// default backward engine).
    pub fn forward(mut self) -> Self {
        self.materialization = MaterializationStrategy::ForwardSemiNaive;
        self
    }

    /// Convenience: in-node parallel forward closure in every worker.
    /// `threads == 0` lets the master split the machine's parallelism
    /// evenly across the `k` workers at spawn time.
    pub fn forward_parallel(mut self, threads: usize) -> Self {
        self.materialization = MaterializationStrategy::ForwardParallel { threads };
        self
    }

    /// Convenience: attach a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(Arc::new(plan));
        self
    }

    /// Convenience: set the round/collect patience.
    pub fn with_round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Convenience: set the reaction to worker loss.
    pub fn with_recovery(mut self, recovery: FaultRecovery) -> Self {
        self.recovery = recovery;
        self
    }

    /// Convenience: evaluate `rules` alongside the compiled ontology
    /// rules (they must be interned against the run's dictionary).
    pub fn with_extra_rules(mut self, rules: Vec<Rule>) -> Self {
        self.extra_rules = rules;
        self
    }

    /// Convenience: set the reaction to a deny-level lint finding.
    pub fn with_unsafe_rules(mut self, policy: UnsafeRulePolicy) -> Self {
        self.unsafe_rules = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ParallelConfig::default();
        assert_eq!(c.k, 2);
        assert!(matches!(c.strategy, PartitioningStrategy::Data(DataPolicy::Graph(_))));
        assert!(matches!(
            c.materialization,
            MaterializationStrategy::BackwardJena(_)
        ));
    }

    #[test]
    fn with_k_overrides_only_k() {
        let c = ParallelConfig::default().with_k(8);
        assert_eq!(c.k, 8);
        assert!(matches!(c.comm, CommMode::Channel));
    }

    #[test]
    fn forward_switches_materialization() {
        let c = ParallelConfig::default().forward();
        assert_eq!(c.materialization, MaterializationStrategy::ForwardSemiNaive);
    }
}
