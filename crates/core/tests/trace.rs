//! Tracing integration: spans emitted by a traced `run_parallel` nest
//! properly, never cross round boundaries, and tracing itself never
//! perturbs the closure. Lives in its own integration-test binary (and a
//! single `#[test]`) because the ambient recorder is process-global —
//! concurrent tests would interleave their events.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::config::{ParallelConfig, PartitioningStrategy};
use owlpar_core::master::{run_parallel, run_serial};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_datalog::MaterializationStrategy;
use owlpar_obs::{Event, Phase, Recorder, NO_ROUND};

/// One recorded span, flattened for interval arithmetic.
#[derive(Debug, Clone, Copy)]
struct Span {
    track: u32,
    phase: Phase,
    round: u32,
    start: u64,
    end: u64,
}

fn spans_of(events: &[Event]) -> Vec<Span> {
    events
        .iter()
        .filter_map(|e| match *e {
            Event::Span {
                track,
                phase,
                round,
                start_us,
                dur_us,
            } => Some(Span {
                track,
                phase,
                round,
                start: start_us,
                end: start_us.saturating_add(dur_us),
            }),
            Event::Count { .. } => None,
        })
        .collect()
}

/// Two intervals either nest or are disjoint — no partial overlap.
fn nested_or_disjoint(a: Span, b: Span) -> bool {
    let disjoint = a.end <= b.start || b.end <= a.start;
    let a_in_b = b.start <= a.start && a.end <= b.end;
    let b_in_a = a.start <= b.start && b.end <= a.end;
    disjoint || a_in_b || b_in_a
}

#[test]
fn traced_run_spans_nest_and_tracing_is_inert() {
    let g0 = generate_lubm(&LubmConfig::mini(2));

    // Baseline: closure under the default (disabled) recorder.
    let cfg = ParallelConfig {
        k: 2,
        strategy: PartitioningStrategy::data_graph(),
        ..ParallelConfig::default()
    }
    .forward();
    let mut g_plain = g0.clone();
    let report_plain = run_parallel(&mut g_plain, &cfg).expect("untraced run succeeds");

    // Traced run: identical closure, plus a well-formed span stream.
    owlpar_obs::install_global(Recorder::enabled());
    let mut g_traced = g0.clone();
    let report_traced = run_parallel(&mut g_traced, &cfg).expect("traced run succeeds");
    let book = owlpar_obs::global().drain();
    owlpar_obs::install_global(Recorder::disabled());

    // Tracing must not perturb the result in any way.
    assert_eq!(g_traced.len(), g_plain.len(), "closure size changed under tracing");
    assert_eq!(
        g_traced.term_fingerprint(),
        g_plain.term_fingerprint(),
        "closure content changed under tracing"
    );
    assert_eq!(report_traced.derived, report_plain.derived);

    // ... and it must agree with the serial oracle too.
    let mut g_serial = g0.clone();
    run_serial(&mut g_serial, MaterializationStrategy::ForwardSemiNaive);
    assert_eq!(g_traced.term_fingerprint(), g_serial.term_fingerprint());

    let spans = spans_of(&book.events);
    assert!(!spans.is_empty(), "traced run recorded no spans");

    // Master lifecycle phases are present.
    assert!(
        spans.iter().any(|s| s.phase == Phase::Partition),
        "no Partition span"
    );
    assert!(
        spans.iter().any(|s| s.phase == Phase::Aggregate),
        "no Aggregate span"
    );

    // Worker round spans: both workers contributed, rounds start at 0.
    let round_tracks: std::collections::BTreeSet<u32> = spans
        .iter()
        .filter(|s| s.phase == Phase::Round)
        .map(|s| s.track)
        .collect();
    assert_eq!(round_tracks.len(), 2, "expected round spans from 2 workers");

    for &t in &round_tracks {
        let lane: Vec<Span> = spans.iter().filter(|s| s.track == t).copied().collect();
        let rounds: Vec<Span> = lane
            .iter()
            .filter(|s| s.phase == Phase::Round)
            .copied()
            .collect();

        // (1) Every pair of spans on one lane nests or is disjoint.
        for (i, &a) in lane.iter().enumerate() {
            for &b in &lane[i + 1..] {
                assert!(
                    nested_or_disjoint(a, b),
                    "partially-overlapping spans on track {t}: {a:?} vs {b:?}"
                );
            }
        }

        // (2) Round spans are mutually disjoint (a worker is in at most
        // one round at a time) and strictly ordered by round number.
        for (i, &a) in rounds.iter().enumerate() {
            for &b in &rounds[i + 1..] {
                assert!(
                    a.end <= b.start || b.end <= a.start,
                    "round spans overlap on track {t}: {a:?} vs {b:?}"
                );
                assert!(a.round != b.round, "duplicate round {} on track {t}", a.round);
            }
        }

        // (3) No sub-span crosses a round boundary: a span tagged round r
        // lies inside that round's span; untagged spans lie outside every
        // round span or contain it entirely (never straddle).
        for &s in &lane {
            if s.phase == Phase::Round {
                continue;
            }
            if s.round != NO_ROUND {
                let owner = rounds
                    .iter()
                    .find(|r| r.round == s.round)
                    .unwrap_or_else(|| panic!("span {s:?} tagged with unknown round"));
                assert!(
                    owner.start <= s.start && s.end <= owner.end,
                    "span {s:?} escapes its round span {owner:?}"
                );
            } else {
                for &r in &rounds {
                    assert!(
                        nested_or_disjoint(s, r),
                        "untagged span {s:?} straddles round span {r:?}"
                    );
                }
            }
        }
    }
}
