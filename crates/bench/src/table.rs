//! Minimal aligned-column table printing for the experiment binaries.

/// Render rows as an aligned text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["k", "speedup"],
            &[
                vec!["2".into(), "1.95".into()],
                vec!["16".into(), "18.20".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("speedup"));
        assert!(lines[1].starts_with('-'));
        // right-aligned: both data lines end at the same column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.23456), "1.235");
    }
}
