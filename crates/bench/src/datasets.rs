//! Benchmark dataset selection shared by the experiment binaries.

use owlpar_datagen::{
    generate_lubm, generate_mdc, generate_uobm, LubmConfig, MdcConfig, UobmConfig,
};
use owlpar_rdf::Graph;

/// The paper's three benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// LUBM-N (super-linear regime).
    Lubm,
    /// UOBM-like (sub-linear regime).
    Uobm,
    /// MDC-like oilfield (super-linear regime).
    Mdc,
}

impl Dataset {
    /// All three, in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::Lubm, Dataset::Uobm, Dataset::Mdc];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Lubm => "LUBM",
            Dataset::Uobm => "UOBM",
            Dataset::Mdc => "MDC",
        }
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lubm" => Ok(Dataset::Lubm),
            "uobm" => Ok(Dataset::Uobm),
            "mdc" => Ok(Dataset::Mdc),
            other => Err(format!("unknown dataset '{other}' (lubm|uobm|mdc)")),
        }
    }
}

/// Scaling knobs, parsed from CLI flags.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Universities (LUBM/UOBM) — the `N` of LUBM-N.
    pub universities: usize,
    /// Entity-count multiplier (1.0 = paper scale).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        // Laptop defaults: big enough for clear speedup shapes, small
        // enough that the (intentionally) super-linear backward reasoner
        // finishes a full k-sweep in minutes.
        DatasetConfig {
            universities: 4,
            scale: 0.3,
            seed: 42,
        }
    }
}

impl DatasetConfig {
    /// Parse `--scale`, `--universities`, `--seed` out of an argv-style
    /// iterator. Unrecognized flags are returned for the caller.
    pub fn from_args(args: impl Iterator<Item = String>) -> (Self, Vec<String>) {
        let mut cfg = DatasetConfig::default();
        let mut rest = Vec::new();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            let mut grab = |name: &str| -> Option<String> {
                if a == name {
                    it.next()
                } else {
                    None
                }
            };
            if let Some(v) = grab("--scale") {
                cfg.scale = v.parse().expect("--scale takes a float");
            } else if let Some(v) = grab("--universities") {
                cfg.universities = v.parse().expect("--universities takes an integer");
            } else if let Some(v) = grab("--seed") {
                cfg.seed = v.parse().expect("--seed takes an integer");
            } else {
                rest.push(a);
            }
        }
        (cfg, rest)
    }

    /// Generate the dataset.
    pub fn generate(&self, which: Dataset) -> Graph {
        match which {
            Dataset::Lubm => generate_lubm(&LubmConfig {
                universities: self.universities,
                scale: self.scale,
                seed: self.seed,
            }),
            Dataset::Uobm => generate_uobm(&UobmConfig {
                lubm: LubmConfig {
                    universities: self.universities,
                    scale: self.scale,
                    seed: self.seed,
                },
                ..UobmConfig::default()
            }),
            Dataset::Mdc => {
                // map the scale onto the MDC knobs so sizes are comparable
                let base = MdcConfig::default();
                generate_mdc(&MdcConfig {
                    fields: self.universities.max(2),
                    wells_per_field: (50.0 * self.scale)
                        .round()
                        .max(2.0) as usize,
                    seed: self.seed,
                    ..base
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_passes_rest() {
        let args = ["--scale", "0.5", "--foo", "--universities", "8"]
            .iter()
            .map(|s| s.to_string());
        let (cfg, rest) = DatasetConfig::from_args(args);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.universities, 8);
        assert_eq!(rest, vec!["--foo"]);
    }

    #[test]
    fn dataset_from_str() {
        assert_eq!("lubm".parse::<Dataset>().unwrap(), Dataset::Lubm);
        assert_eq!("UOBM".parse::<Dataset>().unwrap(), Dataset::Uobm);
        assert!("x".parse::<Dataset>().is_err());
    }

    #[test]
    fn generates_all_three() {
        let cfg = DatasetConfig {
            universities: 2,
            scale: 0.03,
            seed: 1,
        };
        for d in Dataset::ALL {
            let g = cfg.generate(d);
            assert!(g.len() > 100, "{} too small: {}", d.name(), g.len());
        }
    }
}
