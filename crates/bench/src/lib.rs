//! Shared infrastructure for the experiment binaries (one per table or
//! figure of the paper) and the Criterion micro-benchmarks.
//!
//! Every binary accepts `--scale <f>` (entity-count multiplier),
//! `--universities <n>`, and prints a self-describing table to stdout; the
//! same rows are appended as JSON lines to `target/experiments/<exp>.jsonl`
//! so EXPERIMENTS.md can be regenerated from artifacts.

#![forbid(unsafe_code)]
// The experiment harness is operator-facing tooling, not library code: a
// failed run should abort loudly with context, so the workspace-level
// unwrap/expect/panic deny gates are relaxed for this crate only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod datasets;
pub mod runner;
pub mod table;

pub use datasets::{Dataset, DatasetConfig};
pub use runner::{speedup_series, SpeedupPoint};
