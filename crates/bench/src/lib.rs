//! Shared infrastructure for the experiment binaries (one per table or
//! figure of the paper) and the Criterion micro-benchmarks.
//!
//! Every binary accepts `--scale <f>` (entity-count multiplier),
//! `--universities <n>`, and prints a self-describing table to stdout; the
//! same rows are appended as JSON lines to `target/experiments/<exp>.jsonl`
//! so EXPERIMENTS.md can be regenerated from artifacts.

#![forbid(unsafe_code)]
// The experiment harness is operator-facing tooling, not library code: a
// failed run should abort loudly with context, so the workspace-level
// unwrap/expect/panic deny gates are relaxed for this crate only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod datasets;
pub mod runner;
pub mod table;

pub use datasets::{Dataset, DatasetConfig};
pub use runner::{speedup_series, SpeedupPoint};

/// Render a recorder's per-phase span totals as a JSON object —
/// `{"join":{"seconds":1.234567,"spans":12},...}` — the `"phases"`
/// field of the BENCH artifacts. Phases never recorded are omitted; an
/// untraced run renders `{}`.
pub fn phases_json(rec: &owlpar_obs::Recorder) -> String {
    let entries: Vec<String> = rec
        .phase_totals()
        .into_iter()
        .map(|(phase, dur_us, spans)| {
            format!(
                "\"{}\":{{\"seconds\":{:.6},\"spans\":{spans}}}",
                phase.name(),
                dur_us as f64 / 1e6
            )
        })
        .collect();
    format!("{{{}}}", entries.join(","))
}

#[cfg(test)]
mod tests {
    use owlpar_obs::{Phase, Recorder};

    #[test]
    fn phases_json_renders_recorded_phases_only() {
        assert_eq!(super::phases_json(&Recorder::disabled()), "{}");
        let rec = Recorder::enabled();
        let mut lane = rec.track("bench");
        lane.span_at(Phase::Join, 0, 0, 1_500_000);
        lane.span_at(Phase::Join, 1, 0, 500_000);
        lane.flush();
        let json = super::phases_json(&rec);
        assert_eq!(json, "{\"join\":{\"seconds\":2.000000,\"spans\":2}}");
    }
}
