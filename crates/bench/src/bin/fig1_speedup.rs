//! **Figure 1** — speedup of the data-partitioning approach (graph
//! partitioning policy) for LUBM, UOBM and MDC over the number of
//! processors.
//!
//! Paper shape: LUBM and MDC super-linear (partitioning shrinks the
//! super-linear backward reasoner's search space), UOBM sub-linear (dense
//! cross-cluster links ⇒ high replication & communication).
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin fig1_speedup [-- --scale 0.3 --universities 4 --ks 1,2,4,8,16]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::{record_jsonl, speedup_series};
use owlpar_bench::table;
use owlpar_core::ParallelConfig;

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks = parse_ks(&rest).unwrap_or_else(|| vec![1, 2, 4, 8, 16]);

    println!("Figure 1: data-partitioning (graph policy) speedups");
    println!("dataset config: {cfg:?}, ks: {ks:?}\n");

    let mut all_rows = Vec::new();
    for dataset in Dataset::ALL {
        let graph = cfg.generate(dataset);
        println!("{} ({} triples)", dataset.name(), graph.len());
        let base = ParallelConfig::default(); // backward engine, channel comm
        let points = speedup_series(&graph, &base, &ks);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.k.to_string(),
                    table::f2(p.serial_secs),
                    table::f2(p.parallel_secs),
                    table::f2(p.speedup),
                    p.rounds.to_string(),
                    p.ir_excess.map(table::f3).unwrap_or_default(),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["k", "serial(s)", "parallel(s)", "speedup", "rounds", "IR"], &rows)
        );
        for p in points {
            all_rows.push(serde_json::json!({
                "dataset": dataset.name(),
                "point": p,
            }));
        }
    }
    let path = record_jsonl("fig1_speedup", &all_rows);
    println!("rows recorded to {}", path.display());
}

fn parse_ks(rest: &[String]) -> Option<Vec<usize>> {
    let idx = rest.iter().position(|a| a == "--ks")?;
    let spec = rest.get(idx + 1)?;
    Some(
        spec.split(',')
            .map(|s| s.trim().parse().expect("--ks takes integers"))
            .collect(),
    )
}
