//! Load generator for `owlpar-serve`: spins up an in-process server on a
//! generated LUBM KB, drives it with N concurrent clients at several
//! concurrency levels, and emits `BENCH_serve.json` with throughput and
//! latency percentiles per level.
//!
//! ```text
//! serve_load [--requests 300] [--levels 1,2,4] [--universities 1]
//!            [--threads 4] [--out BENCH_serve.json]
//! ```
//!
//! Every 10th request per client is an INSERT (a fresh unique triple,
//! exercising the delta-closure write path); the rest are queries mixed
//! over a full-scan-with-LIMIT and a type scan. Latencies are recorded
//! exactly and percentiles computed from the sorted samples.

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{ParallelConfig, PartitioningStrategy};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_serve::{run_info, serve, Client, ServeConfig, ServingKb};
use std::time::{Duration, Instant};

const QUERIES: [&str; 2] = [
    "SELECT ?s ?o WHERE { ?s ?p ?o } LIMIT 50",
    "SELECT ?s WHERE { ?s rdf:type ?c } LIMIT 20",
];

struct LevelResult {
    concurrency: usize,
    requests: usize,
    elapsed: Duration,
    query_lat: Vec<Duration>,
    insert_lat: Vec<Duration>,
}

fn percentile_us(sorted: &[Duration], q: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_micros()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let levels: Vec<usize> = flag_value(&args, "--levels")
        .unwrap_or_else(|| "1,2,4".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let universities: usize = flag_value(&args, "--universities")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let threads: usize = flag_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out_path =
        flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    assert!(levels.len() >= 3, "need at least 3 concurrency levels");

    let graph = generate_lubm(&LubmConfig::mini(universities));
    let base = graph.len();
    let cfg = ParallelConfig {
        k: 2,
        strategy: PartitioningStrategy::data_hash(),
        ..ParallelConfig::default()
    }
    .forward();
    let (kb, report) = ServingKb::materialize(graph, &cfg).expect("materialize KB");
    println!("materialized: {}", report.summary());

    let handle = serve(
        kb,
        run_info(&report),
        &ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.addr();
    println!(
        "serving {} triples ({} base) on {addr}, {threads} server thread(s)",
        report.closure_size, base
    );

    let mut results = Vec::new();
    for &concurrency in &levels {
        let started = Instant::now();
        let mut workers = Vec::new();
        for client_id in 0..concurrency {
            workers.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut query_lat = Vec::with_capacity(requests);
                let mut insert_lat = Vec::new();
                for i in 0..requests {
                    let t0 = Instant::now();
                    if i % 10 == 9 {
                        c.insert(&format!(
                            "<http://load/c{client_id}x{concurrency}r{i}> \
                             <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                             <http://load/Probe> .\n"
                        ))
                        .expect("insert");
                        insert_lat.push(t0.elapsed());
                    } else {
                        c.query(QUERIES[i % QUERIES.len()]).expect("query");
                        query_lat.push(t0.elapsed());
                    }
                }
                (query_lat, insert_lat)
            }));
        }
        let mut query_lat = Vec::new();
        let mut insert_lat = Vec::new();
        for w in workers {
            let (q, i) = w.join().expect("client thread");
            query_lat.extend(q);
            insert_lat.extend(i);
        }
        let elapsed = started.elapsed();
        query_lat.sort_unstable();
        insert_lat.sort_unstable();
        let total = query_lat.len() + insert_lat.len();
        println!(
            "concurrency {concurrency:>2}: {total} requests in {:.3}s \
             ({:.0} req/s), query p50 {}us p99 {}us, insert p50 {}us p99 {}us",
            elapsed.as_secs_f64(),
            total as f64 / elapsed.as_secs_f64(),
            percentile_us(&query_lat, 0.50),
            percentile_us(&query_lat, 0.99),
            percentile_us(&insert_lat, 0.50),
            percentile_us(&insert_lat, 0.99),
        );
        results.push(LevelResult {
            concurrency,
            requests: total,
            elapsed,
            query_lat,
            insert_lat,
        });
    }

    let mut c = Client::connect(addr).expect("connect for shutdown");
    let stats_json = c.stats().expect("stats");
    c.shutdown().expect("shutdown");
    handle.join().expect("server drain");

    let levels_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"concurrency\":{},\"requests\":{},\"elapsed_s\":{:.6},\
                 \"throughput_rps\":{:.1},\
                 \"query_p50_us\":{},\"query_p99_us\":{},\
                 \"insert_p50_us\":{},\"insert_p99_us\":{}}}",
                r.concurrency,
                r.requests,
                r.elapsed.as_secs_f64(),
                r.requests as f64 / r.elapsed.as_secs_f64(),
                percentile_us(&r.query_lat, 0.50),
                percentile_us(&r.query_lat, 0.99),
                percentile_us(&r.insert_lat, 0.50),
                percentile_us(&r.insert_lat, 0.99),
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"serve_load\",\"kb_base_triples\":{base},\
         \"kb_closure_triples\":{},\"server_threads\":{threads},\
         \"requests_per_client\":{requests},\
         \"levels\":[{}],\"server_stats\":{stats_json}}}\n",
        report.closure_size,
        levels_json.join(","),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
