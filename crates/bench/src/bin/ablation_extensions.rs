//! Ablation of the two paper-proposed improvements we implemented:
//!
//! * **Async rounds** (§VI-B): "making a partition not wait till all
//!   other partitions finish ... will reduce the synchronization time" —
//!   measured as barrier vs async simulated times on the same workload.
//! * **Hybrid partitioning** (§VII future work): rules × data split vs
//!   pure data and pure rule splits at equal worker counts.
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin ablation_extensions [-- --scale 0.15 --ks 4,8]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::{point_from_report, record_jsonl};
use owlpar_bench::table;
use owlpar_core::config::RoundMode;
use owlpar_core::{run_parallel, run_serial, ParallelConfig, PartitioningStrategy};

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks: Vec<usize> = rest
        .iter()
        .position(|a| a == "--ks")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![4, 8]);

    let graph = cfg.generate(Dataset::Lubm);
    let base = ParallelConfig::default();
    let (_, serial) = run_serial(&mut graph.clone(), base.materialization);
    println!(
        "Extension ablations, LUBM ({} triples), serial {:.2}s\n",
        graph.len(),
        serial.as_secs_f64()
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &k in &ks {
        let variants: Vec<(&str, ParallelConfig)> = vec![
            (
                "data/barrier",
                ParallelConfig {
                    k,
                    ..base.clone()
                },
            ),
            (
                "data/async",
                ParallelConfig {
                    k,
                    rounds: RoundMode::Async,
                    ..base.clone()
                },
            ),
            (
                "rule",
                ParallelConfig {
                    k,
                    strategy: PartitioningStrategy::rule(),
                    ..base.clone()
                },
            ),
            (
                "hybrid(g=2)",
                ParallelConfig {
                    k,
                    strategy: PartitioningStrategy::Hybrid { rule_groups: 2 },
                    ..base.clone()
                },
            ),
        ];
        for (name, cfg_v) in variants {
            if matches!(cfg_v.strategy, PartitioningStrategy::Hybrid { rule_groups } if k % rule_groups != 0)
            {
                continue;
            }
            let mut g = graph.clone();
            let report = run_parallel(&mut g, &cfg_v).expect("clean experiment run");
            let p = point_from_report(&report, serial);
            let max_sync = report
                .workers
                .iter()
                .map(|w| w.sync_time)
                .max()
                .unwrap_or_default();
            rows.push(vec![
                k.to_string(),
                name.to_string(),
                table::f2(p.speedup),
                table::f3(max_sync.as_secs_f64()),
                p.rounds.to_string(),
                table::f3(p.or_excess),
            ]);
            json.push(serde_json::json!({
                "k": k, "variant": name, "point": p,
                "max_sync_s": max_sync.as_secs_f64(),
            }));
        }
    }
    println!(
        "{}",
        table::render(
            &["k", "variant", "speedup", "max sync(s)", "rounds", "OR"],
            &rows
        )
    );
    let path = record_jsonl("ablation_extensions", &json);
    println!("rows recorded to {}", path.display());
}
