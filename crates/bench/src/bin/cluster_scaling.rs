//! Cluster scaling sweep: run the multi-process-style TCP cluster
//! runtime (master + `k` workers over loopback sockets, all in this
//! process) at several cluster sizes against one LUBM KB, verify every
//! closure against the serial oracle, and emit `BENCH_cluster.json`.
//!
//! ```text
//! cluster_scaling [--levels 1,2,4] [--universities 1] [--out BENCH_cluster.json]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{run_serial, ParallelConfig, PartitioningStrategy};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_datalog::MaterializationStrategy;
use owlpar_net::{run_cluster_master, run_cluster_worker, MasterOptions, WorkerOptions};
use std::net::TcpListener;
use std::time::Instant;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let levels: Vec<usize> = flag_value(&args, "--levels")
        .unwrap_or_else(|| "1,2,4".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let universities: usize = flag_value(&args, "--universities")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_cluster.json".to_string());
    assert!(!levels.is_empty(), "need at least one cluster size");

    let g0 = generate_lubm(&LubmConfig::mini(universities));
    let base = g0.len();

    // Serial oracle + baseline time.
    let mut serial = g0.clone();
    let t0 = Instant::now();
    run_serial(&mut serial, MaterializationStrategy::ForwardSemiNaive);
    let serial_elapsed = t0.elapsed();
    let (want_fp, want_len) = (serial.term_fingerprint(), serial.len());
    println!(
        "serial: {base} -> {want_len} triples in {:.3}s",
        serial_elapsed.as_secs_f64()
    );

    let mut rows = Vec::new();
    for &k in &levels {
        let cfg = ParallelConfig {
            k,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let mut g = g0.clone();
        let t0 = Instant::now();
        let report = std::thread::scope(|s| {
            let workers: Vec<_> = (0..k)
                .map(|_| s.spawn(move || run_cluster_worker(addr, &WorkerOptions::default())))
                .collect();
            let report = run_cluster_master(&mut g, &cfg, listener, &MasterOptions::default())
                .expect("cluster run");
            for w in workers {
                w.join().expect("worker thread").expect("worker run");
            }
            report
        });
        let elapsed = t0.elapsed();
        assert_eq!(g.len(), want_len, "k={k}: closure size diverged");
        assert_eq!(g.term_fingerprint(), want_fp, "k={k}: closure diverged");
        let rounds = report.max_rounds();
        let speedup = serial_elapsed.as_secs_f64() / elapsed.as_secs_f64();
        println!(
            "k={k}: {} triples in {:.3}s ({speedup:.2}x vs serial), {rounds} round(s), {}",
            report.closure_size,
            elapsed.as_secs_f64(),
            report.summary()
        );
        rows.push(format!(
            "{{\"k\":{k},\"elapsed_s\":{:.6},\"speedup_vs_serial\":{speedup:.4},\
             \"rounds\":{rounds},\"closure_size\":{},\"derived\":{},\
             \"modeled_parallel_s\":{:.6},\"host_parallel_s\":{:.6},\
             \"output_replication\":{:.4}}}",
            elapsed.as_secs_f64(),
            report.closure_size,
            report.derived,
            report.parallel_time.as_secs_f64(),
            report.host_parallel_time.as_secs_f64(),
            report.output_replication,
        ));
    }

    let json = format!(
        "{{\"bench\":\"cluster_scaling\",\"kb_base_triples\":{base},\
         \"kb_closure_triples\":{want_len},\
         \"serial_elapsed_s\":{:.6},\"levels\":[{}]}}\n",
        serial_elapsed.as_secs_f64(),
        rows.join(","),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_cluster.json");
    println!("wrote {out_path}");
}
