//! Cluster scaling sweep: run the multi-process-style TCP cluster
//! runtime (master + `k` workers over loopback sockets, all in this
//! process) at several cluster sizes against one LUBM KB, verify every
//! closure against the serial oracle, and emit `BENCH_cluster.json`.
//!
//! Each cluster size runs **twice against a shared partition cache**:
//! a cold run (every worker misses, the master ships full partitions)
//! and a warm run (every worker hits, `Setup` ships digests only) —
//! so the JSON reports both the wire-format compression ratio and the
//! cache's setup-byte elision. The cold run is traced (workers ship
//! telemetry to the master), so each level's row also carries a
//! `"phases"` object with cluster-wide per-phase wall times.
//!
//! ```text
//! cluster_scaling [--levels 1,2,4] [--triples 3000] [--universities 1]
//!                 [--out BENCH_cluster.json]
//! ```
//!
//! `--triples` grows the KB (by adding LUBM universities on top of the
//! `--universities` floor) until the base triple count reaches the
//! target; the old 142-triple single-university mini universe was too
//! small to exercise the codec or the chunked streams.

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{
    analyze_strategy, run_serial, ParallelConfig, PartitioningStrategy, PlanningBase, WireBytes,
};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_datalog::MaterializationStrategy;
use owlpar_net::{run_cluster_master, run_cluster_worker, MasterOptions, WorkerOptions};
use owlpar_obs::Recorder;
use owlpar_rdf::Graph;
use std::net::TcpListener;
use std::path::Path;
use std::time::{Duration, Instant};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One cluster run: master + `k` worker threads over loopback, every
/// worker caching into `cache_dir`. With `trace`, the run ships worker
/// telemetry to the master and merges it into that recorder. Returns
/// (elapsed, closure, wire).
fn run_once(
    g0: &Graph,
    k: usize,
    cache_dir: &Path,
    trace: Option<Recorder>,
) -> (Duration, Graph, WireBytes) {
    let cfg = ParallelConfig {
        k,
        strategy: PartitioningStrategy::data_graph(),
        ..ParallelConfig::default()
    }
    .forward();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let opts = WorkerOptions {
        cache_dir: Some(cache_dir.to_path_buf()),
        ..WorkerOptions::default()
    };
    let mut g = g0.clone();
    let t0 = Instant::now();
    let report = std::thread::scope(|s| {
        let workers: Vec<_> = (0..k)
            .map(|_| {
                let opts = opts.clone();
                s.spawn(move || run_cluster_worker(addr, &opts))
            })
            .collect();
        let master_opts = MasterOptions {
            trace,
            ..MasterOptions::default()
        };
        let report =
            run_cluster_master(&mut g, &cfg, listener, &master_opts).expect("cluster run");
        for w in workers {
            w.join().expect("worker thread").expect("worker run");
        }
        report
    });
    let elapsed = t0.elapsed();
    let wire = report.wire.clone().expect("cluster runs report wire stats");
    println!(
        "k={k}: {} triples in {:.3}s, {} round(s), {}",
        report.closure_size,
        elapsed.as_secs_f64(),
        report.max_rounds(),
        wire.summary()
    );
    (elapsed, g, wire)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let levels: Vec<usize> = flag_value(&args, "--levels")
        .unwrap_or_else(|| "1,2,4".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let universities: usize = flag_value(&args, "--universities")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let triples: usize = flag_value(&args, "--triples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_cluster.json".to_string());
    assert!(!levels.is_empty(), "need at least one cluster size");

    // Grow the universe until the base KB reaches the target size.
    let mut unis = universities.max(1);
    let mut g0 = generate_lubm(&LubmConfig::mini(unis));
    while g0.len() < triples {
        unis += 1;
        g0 = generate_lubm(&LubmConfig::mini(unis));
    }
    let base = g0.len();
    println!("kb: {unis} universities, {base} base triples (target {triples})");

    // Serial oracle + baseline time.
    let mut serial = g0.clone();
    let t0 = Instant::now();
    run_serial(&mut serial, MaterializationStrategy::ForwardSemiNaive);
    let serial_elapsed = t0.elapsed();
    let (want_fp, want_len) = (serial.term_fingerprint(), serial.len());
    println!(
        "serial: {base} -> {want_len} triples in {:.3}s",
        serial_elapsed.as_secs_f64()
    );

    // Static plan analysis over the same KB: per level the analyzer's
    // setup/round wire-byte predictions land in the JSON next to the
    // measured WireLedger numbers, so drift between the cost model and
    // the actual wire format is visible in every bench artifact.
    let plan_base = {
        let mut g = g0.clone();
        let base = PlanningBase::compile(&mut g, &[]);
        (base, g.dict)
    };

    // One shared cache directory for the whole sweep; the config digest
    // includes `k`, so each level's first run is cold and its second is
    // warm regardless of what earlier levels stored.
    let cache_dir =
        std::env::temp_dir().join(format!("owlpar-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut rows = Vec::new();
    for &k in &levels {
        let predicted = analyze_strategy(
            &plan_base.0,
            &plan_base.1,
            k,
            &PartitioningStrategy::data_graph(),
        )
        .expect("plan analysis");

        // The cold run is traced: workers ship their telemetry to the
        // master, so the row's `"phases"` object covers the whole
        // cluster (master relay + every worker lane).
        let rec = Recorder::enabled();
        let (cold_elapsed, g_cold, cold) = run_once(&g0, k, &cache_dir, Some(rec.clone()));
        let phases = owlpar_bench::phases_json(&rec);
        assert_eq!(g_cold.len(), want_len, "k={k}: cold closure size diverged");
        assert_eq!(
            g_cold.term_fingerprint(),
            want_fp,
            "k={k}: cold closure diverged"
        );
        assert_eq!(cold.cache_misses, k as u64, "k={k}: cold run should miss");

        let (warm_elapsed, g_warm, warm) = run_once(&g0, k, &cache_dir, None);
        assert_eq!(g_warm.len(), want_len, "k={k}: warm closure size diverged");
        assert_eq!(
            g_warm.term_fingerprint(),
            want_fp,
            "k={k}: warm closure diverged"
        );
        assert_eq!(warm.cache_hits, k as u64, "k={k}: warm run should hit");

        let speedup = serial_elapsed.as_secs_f64() / cold_elapsed.as_secs_f64();
        let warm_setup_fraction = if cold.setup.bytes == 0 {
            0.0
        } else {
            warm.setup.bytes as f64 / cold.setup.bytes as f64
        };
        println!(
            "k={k}: warm setup {} B vs cold {} B ({:.4}%), compression {:.2}x",
            warm.setup.bytes,
            cold.setup.bytes,
            warm_setup_fraction * 100.0,
            cold.compression_ratio(),
        );
        // Predicted vs measured (cold run: nothing elided by the cache).
        let setup_ratio = cold.setup.bytes as f64 / predicted.setup_bytes.max(1) as f64;
        let round_ratio = cold.rounds.bytes as f64 / predicted.round_bytes.max(1.0);
        println!(
            "k={k}: predicted setup {} B / rounds {:.0} B, measured {} B / {} B \
             (ratios {setup_ratio:.2}x / {round_ratio:.2}x)",
            predicted.setup_bytes, predicted.round_bytes, cold.setup.bytes, cold.rounds.bytes,
        );
        rows.push(format!(
            "{{\"k\":{k},\"elapsed_s\":{:.6},\"warm_elapsed_s\":{:.6},\
             \"speedup_vs_serial\":{speedup:.4},\"closure_size\":{want_len},\
             \"compression_ratio\":{:.4},\"warm_setup_fraction\":{warm_setup_fraction:.6},\
             \"predicted_setup_bytes\":{},\"predicted_round_bytes\":{:.0},\
             \"setup_prediction_ratio\":{setup_ratio:.4},\
             \"round_prediction_ratio\":{round_ratio:.4},\
             \"phases\":{phases},\
             \"wire_cold\":{},\"wire_warm\":{}}}",
            cold_elapsed.as_secs_f64(),
            warm_elapsed.as_secs_f64(),
            cold.compression_ratio(),
            predicted.setup_bytes,
            predicted.round_bytes,
            cold.to_json(),
            warm.to_json(),
        ));
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let json = format!(
        "{{\"bench\":\"cluster_scaling\",\"kb_universities\":{unis},\
         \"kb_base_triples\":{base},\"kb_closure_triples\":{want_len},\
         \"serial_elapsed_s\":{:.6},\"levels\":[{}]}}\n",
        serial_elapsed.as_secs_f64(),
        rows.join(","),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_cluster.json");
    println!("wrote {out_path}");
}
