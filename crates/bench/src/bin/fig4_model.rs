//! **Figure 4** — regressing a cubic performance model from observed
//! serial reasoning times over a series of LUBM sizes (LUBM-1, LUBM-2,
//! ...).
//!
//! Paper shape: the backward per-resource reasoner's time grows
//! super-linearly in KB size and a cubic fits with high R² ("since the
//! worst case of the reasoning for the rule set is cubic, fitting a cubic
//! model is reasonable").
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin fig4_model [-- --universities 6 --scale 0.3]
//! ```

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::record_jsonl;
use owlpar_bench::table;
use owlpar_core::{fit_cubic, run_serial};
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::MaterializationStrategy;

fn main() {
    let (cfg, _) = DatasetConfig::from_args(std::env::args().skip(1));
    let max_u = cfg.universities.max(4);
    println!("Figure 4: cubic model of serial reasoning time vs LUBM size\n");

    let mut xs = Vec::new(); // triples
    let mut ys = Vec::new(); // seconds
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for u in 1..=max_u {
        let mut g = DatasetConfig {
            universities: u,
            ..cfg.clone()
        }
        .generate(Dataset::Lubm);
        let n = g.len() as f64;
        let (_, t) = run_serial(
            &mut g,
            MaterializationStrategy::BackwardJena(TableScope::PerQuery),
        );
        xs.push(n);
        ys.push(t.as_secs_f64());
        rows.push((u, n, t.as_secs_f64()));
    }

    let model = fit_cubic(&xs, &ys);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|&(u, n, t)| {
            vec![
                format!("LUBM-{u}"),
                (n as u64).to_string(),
                table::f3(t),
                table::f3(model.predict(n)),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["dataset", "triples", "measured(s)", "model(s)"], &table_rows)
    );
    println!(
        "cubic fit: t(n) = {:.3e} + {:.3e}·n + {:.3e}·n² + {:.3e}·n³   (R² = {:.4})",
        model.coeffs[0], model.coeffs[1], model.coeffs[2], model.coeffs[3], model.r_squared
    );
    for &(u, n, t) in &rows {
        json.push(serde_json::json!({
            "universities": u, "triples": n, "measured_s": t,
            "predicted_s": model.predict(n),
        }));
    }
    json.push(serde_json::json!({ "model": model }));
    let path = record_jsonl("fig4_model", &json);
    println!("rows recorded to {}", path.display());
}
