//! **Table I** — partitioning metrics (`bal`, `OR`, `IR`, partitioning
//! time) for the three ownership policies on LUBM at k ∈ {2, 4, 8, 16}.
//!
//! Paper shape: graph and domain policies have low IR (≈0.07–0.19 excess)
//! and low-ish bal; hash has IR near or above 1.0 excess (every node's
//! neighborhood is scattered). Partitioning itself is orders of magnitude
//! cheaper than inferencing.
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin table1_metrics [-- --ks 2,4,8,16]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::record_jsonl;
use owlpar_bench::table;
use owlpar_core::{run_parallel, ParallelConfig, PartitioningStrategy};

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks: Vec<usize> = rest
        .iter()
        .position(|a| a == "--ks")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![2, 4, 8, 16]);

    let graph = cfg.generate(Dataset::Lubm);
    println!(
        "Table I: partitioning metrics for the LUBM data-set ({} triples)\n",
        graph.len()
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &k in &ks {
        for (name, strategy) in [
            ("Graph", PartitioningStrategy::data_graph()),
            ("Dom sp.", PartitioningStrategy::data_domain()),
            ("Hash", PartitioningStrategy::data_hash()),
        ] {
            let mut g = graph.clone();
            // OR needs the reasoning outputs; the forward engine computes
            // the identical closure at a fraction of the cost.
            let report = run_parallel(
                &mut g,
                &ParallelConfig {
                    k,
                    strategy,
                    ..ParallelConfig::default()
                }
                .forward(),
            )
            .expect("clean experiment run");
            let q = report.partition_quality.as_ref().expect("data strategy");
            rows.push(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.0}", q.bal),
                table::f3(report.output_replication),
                table::f3(q.ir_excess()),
                format!("{:.3}", report.partition_time.as_secs_f64()),
            ]);
            json.push(serde_json::json!({
                "k": k, "algorithm": name,
                "bal": q.bal,
                "or_excess": report.output_replication,
                "ir_excess": q.ir_excess(),
                "partition_time_s": report.partition_time.as_secs_f64(),
                "edge_cut": report.edge_cut,
            }));
        }
    }
    println!(
        "{}",
        table::render(
            &["k", "algorithm", "bal", "OR", "IR", "part.time(s)"],
            &rows
        )
    );
    let path = record_jsonl("table1_metrics", &json);
    println!("rows recorded to {}", path.display());
}
