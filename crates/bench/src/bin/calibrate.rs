//! Timing probe: serial reasoning time vs dataset size for both engines.
//! Used to pick laptop-scale defaults; not one of the paper's figures.

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_core::run_serial;
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::MaterializationStrategy;

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let dataset: Dataset = rest
        .first()
        .map(|s| s.parse().expect("dataset"))
        .unwrap_or(Dataset::Lubm);
    {
        let scale = cfg.scale;
        let g = cfg.generate(dataset);
        let n = g.len();
        let (d_fwd, t_fwd) =
            run_serial(&mut g.clone(), MaterializationStrategy::ForwardSemiNaive);
        let (d_bwd, t_bwd) = run_serial(
            &mut g.clone(),
            MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
        );
        println!(
            "{} scale={scale:<5} triples={n:>8} fwd: {d_fwd:>7} derived in {:>8.3}s   bwd: {d_bwd:>7} derived in {:>8.3}s",
            dataset.name(),
            t_fwd.as_secs_f64(),
            t_bwd.as_secs_f64()
        );
    }
}
