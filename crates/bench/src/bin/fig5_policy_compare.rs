//! **Figure 5** — speedups of the three data-partitioning policies
//! (graph, domain-specific, hash) on LUBM.
//!
//! Paper shape: domain-specific performs nearly as well as graph
//! partitioning; hash performs very badly because it does not minimize
//! edge-cut (the paper could not even finish hash at 8/16 nodes for
//! memory; at our scales it finishes but its replication shows).
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin fig5_policy_compare [-- --ks 2,4,8,16]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::{record_jsonl, speedup_series};
use owlpar_bench::table;
use owlpar_core::{ParallelConfig, PartitioningStrategy};

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks: Vec<usize> = rest
        .iter()
        .position(|a| a == "--ks")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![2, 4, 8, 16]);

    let graph = cfg.generate(Dataset::Lubm);
    println!(
        "Figure 5: data-partitioning policy comparison, LUBM ({} triples)\n",
        graph.len()
    );

    let policies: [(&str, PartitioningStrategy); 3] = [
        ("graph", PartitioningStrategy::data_graph()),
        ("domain", PartitioningStrategy::data_domain()),
        ("hash", PartitioningStrategy::data_hash()),
    ];

    let mut json = Vec::new();
    for (name, strategy) in policies {
        let base = ParallelConfig {
            strategy,
            ..ParallelConfig::default()
        };
        let points = speedup_series(&graph, &base, &ks);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.k.to_string(),
                    table::f2(p.speedup),
                    p.ir_excess.map(table::f3).unwrap_or_default(),
                    table::f3(p.or_excess),
                    p.rounds.to_string(),
                ]
            })
            .collect();
        println!("policy: {name}");
        println!(
            "{}",
            table::render(&["k", "speedup", "IR", "OR", "rounds"], &rows)
        );
        for p in points {
            json.push(serde_json::json!({"policy": name, "point": p}));
        }
    }
    let path = record_jsonl("fig5_policy_compare", &json);
    println!("rows recorded to {}", path.display());
}
