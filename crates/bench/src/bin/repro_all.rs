//! Run the whole evaluation section in one go: Figs. 1–6 and Table I at
//! the current default scales, forwarding any dataset flags.
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin repro_all [-- --scale 0.3 --universities 4]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exps = [
        "fig1_speedup",
        "fig2_overhead",
        "fig3_theoretical",
        "fig4_model",
        "fig5_policy_compare",
        "fig6_rule_partition",
        "table1_metrics",
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir");
    for exp in exps {
        println!("\n========================= {exp} =========================\n");
        let status = Command::new(bin_dir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
    println!("\nall experiments completed; JSONL artifacts in target/experiments/");
}
