//! **Figure 3** — measured speedup vs the theoretical maximum predicted
//! by the Fig. 4 performance model, for LUBM.
//!
//! The theoretical maximum assumes a perfect partition: k equal parts, no
//! replication, so `max = t(n) / t(n/k)`. The paper plots the overall
//! parallel time and the slowest partition's reasoning time; reasoning
//! tracks the model closely, and the gap to overall is the
//! communication/synchronization overhead a better transport would close.
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin fig3_theoretical [-- --ks 1,2,4,8,16]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::{record_jsonl, speedup_series};
use owlpar_bench::table;
use owlpar_core::{fit_cubic, run_serial, ParallelConfig};
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::MaterializationStrategy;

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks: Vec<usize> = rest
        .iter()
        .position(|a| a == "--ks")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);

    // Fit the model on a size series that reaches *down* to
    // partition-sized inputs (n/k for the largest k measured), so the
    // theoretical-max prediction t(n)/t(n/k) interpolates instead of
    // extrapolating the cubic below the sampled range.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for frac in [0.08, 0.15, 0.25, 0.4, 0.6, 0.8, 1.0] {
        let mut g = DatasetConfig {
            scale: cfg.scale * frac,
            ..cfg.clone()
        }
        .generate(Dataset::Lubm);
        xs.push(g.len() as f64);
        let (_, t) = run_serial(
            &mut g,
            MaterializationStrategy::BackwardJena(TableScope::PerQuery),
        );
        ys.push(t.as_secs_f64());
    }
    let model = fit_cubic(&xs, &ys);
    let min_sample = xs.iter().copied().fold(f64::INFINITY, f64::min);

    // Measure the parallel speedups on the largest size.
    let graph = cfg.generate(Dataset::Lubm);
    let n = graph.len() as f64;
    let points = speedup_series(&graph, &ParallelConfig::default(), &ks);

    println!(
        "Figure 3: measured vs theoretical max speedup, LUBM ({} triples, model R²={:.4})\n",
        graph.len(),
        model.r_squared
    );
    let theoretical = |k: f64| {
        let part = n / k;
        let max = model.max_speedup(n, k);
        if part < min_sample * 0.5 || !max.is_finite() || max <= 0.0 {
            None // below the model's valid range
        } else {
            Some(max)
        }
    };
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                table::f2(p.speedup),
                table::f2(p.reason_speedup),
                theoretical(p.k as f64)
                    .map(table::f2)
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["k", "overall speedup", "slowest-partition speedup", "theoretical max"],
            &rows
        )
    );
    let json: Vec<_> = points
        .iter()
        .map(|p| {
            serde_json::json!({
                "k": p.k,
                "measured": p.speedup,
                "reasoning_only": p.reason_speedup,
                "theoretical_max": theoretical(p.k as f64),
            })
        })
        .collect();
    let path = record_jsonl("fig3_theoretical", &json);
    println!("rows recorded to {}", path.display());
}
