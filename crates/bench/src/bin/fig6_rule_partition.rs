//! **Figure 6** — speedups of the rule-partitioning approach on LUBM,
//! UOBM and MDC for small k.
//!
//! Paper shape: sub-linear but monotonic speedups; the rule-bases are
//! small so only a few partitions make sense. The paper switched this
//! experiment to shared memory because the communicated volumes are much
//! higher than under data partitioning — we use the channel transport
//! accordingly. `--weighted` enables predicate-histogram edge weights.
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin fig6_rule_partition [-- --ks 2,3,4 --weighted]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::{record_jsonl, speedup_series};
use owlpar_bench::table;
use owlpar_core::{ParallelConfig, PartitioningStrategy};
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::MaterializationStrategy;

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks: Vec<usize> = rest
        .iter()
        .position(|a| a == "--ks")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![2, 3, 4]);
    let weighted = rest.iter().any(|a| a == "--weighted");

    println!("Figure 6: rule-partitioning speedups (weighted={weighted})\n");
    let mut json = Vec::new();
    for dataset in Dataset::ALL {
        let graph = cfg.generate(dataset);
        println!("{} ({} triples)", dataset.name(), graph.len());
        // Rule partitioning divides work by *rules*; the per-resource
        // backward engine (whose proof work scales with the rule count)
        // is the matching cost model — the Jena candidate scan would not
        // shrink with the rule subset.
        let base = ParallelConfig {
            strategy: PartitioningStrategy::Rule { weighted },
            materialization: MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
            ..ParallelConfig::default()
        };
        let points = speedup_series(&graph, &base, &ks);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.k.to_string(),
                    table::f2(p.speedup),
                    table::f3(p.or_excess),
                    p.rounds.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["k", "speedup", "OR", "rounds"], &rows)
        );
        for p in points {
            json.push(serde_json::json!({
                "dataset": dataset.name(), "weighted": weighted, "point": p,
            }));
        }
    }
    let path = record_jsonl("fig6_rule_partition", &json);
    println!("rows recorded to {}", path.display());
}
