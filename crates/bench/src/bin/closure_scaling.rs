//! In-node parallel closure scaling: closure throughput (triples/sec)
//! of the multi-threaded semi-naive engine at 1/2/4/8 threads against
//! the serial engine, on a generated LUBM universe. Emits
//! `BENCH_closure.json` (uploaded as a CI artifact).
//!
//! ```text
//! closure_scaling [--universities 2] [--scale 1.0] [--threads 1,2,4,8]
//!                 [--repeat 3] [--out BENCH_closure.json]
//! ```
//!
//! Throughput counts *derived* triples per second of wall-clock closure
//! time; the best of `--repeat` runs is reported per configuration.
//! Each parallel row also carries a `"phases"` object: the recorder's
//! per-phase span totals (join / dedup / barrier-wait / ...) accumulated
//! over all `--repeat` runs of that configuration, so the artifact shows
//! *where* the wall-clock went, not just how much of it there was.

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_datalog::forward::forward_closure;
use owlpar_datalog::parallel_closure;
use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::HorstReasoner;
use owlpar_obs::Recorder;
use owlpar_rdf::TripleStore;
use std::time::{Duration, Instant};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Best-of-`repeat` wall-clock time of `f` on a fresh clone of `store`.
fn time_closure(
    store: &TripleStore,
    repeat: usize,
    mut f: impl FnMut(&mut TripleStore) -> usize,
) -> (usize, Duration) {
    let mut best = Duration::MAX;
    let mut derived = 0;
    for _ in 0..repeat.max(1) {
        let mut s = store.clone();
        let t0 = Instant::now();
        derived = f(&mut s);
        best = best.min(t0.elapsed());
    }
    (derived, best)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let universities: usize = flag_value(&args, "--universities")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let scale: f64 = flag_value(&args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let thread_counts: Vec<usize> = flag_value(&args, "--threads")
        .unwrap_or_else(|| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let repeat: usize = flag_value(&args, "--repeat")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path =
        flag_value(&args, "--out").unwrap_or_else(|| "BENCH_closure.json".to_string());

    let mut graph = generate_lubm(&LubmConfig {
        universities,
        seed: 42,
        scale,
    });
    let hr = HorstReasoner::from_graph(&mut graph, MaterializationStrategy::ForwardSemiNaive);
    let rules = hr.rules().to_vec();
    let base = graph.store.clone();
    println!(
        "closure_scaling: LUBM-{universities} (scale {scale}), {} base triples, {} rules",
        base.len(),
        rules.len()
    );

    let (serial_derived, serial_time) =
        time_closure(&base, repeat, |s| forward_closure(s, &rules));
    let serial_tps = serial_derived as f64 / serial_time.as_secs_f64();
    println!(
        "serial:      {serial_derived} derived in {:.3}s  ({:.0} triples/s)",
        serial_time.as_secs_f64(),
        serial_tps,
    );

    // The ambient recorder feeds the per-phase totals; installed *after*
    // the untraced serial baseline so its wall-clock stays pristine.
    let rec = Recorder::enabled();
    owlpar_obs::install_global(rec.clone());

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        rec.drain(); // reset: totals below cover only this configuration
        let (derived, time) =
            time_closure(&base, repeat, |s| parallel_closure(s, &rules, threads));
        let phases = owlpar_bench::phases_json(&rec);
        assert_eq!(
            derived, serial_derived,
            "parallel closure (threads={threads}) diverged from serial"
        );
        let tps = derived as f64 / time.as_secs_f64();
        let speedup = serial_time.as_secs_f64() / time.as_secs_f64();
        println!(
            "threads={threads}:   {derived} derived in {:.3}s  ({:.0} triples/s, {:.2}x serial)",
            time.as_secs_f64(),
            tps,
            speedup,
        );
        rows.push(format!(
            "{{\"threads\":{threads},\"derived\":{derived},\"elapsed_s\":{:.6},\
             \"triples_per_sec\":{:.1},\"speedup_vs_serial\":{:.3},\
             \"phases\":{phases}}}",
            time.as_secs_f64(),
            tps,
            speedup,
        ));
    }
    owlpar_obs::install_global(Recorder::disabled());

    let json = format!(
        "{{\"bench\":\"closure_scaling\",\"dataset\":\"lubm-{universities}-scale{scale}\",\
         \"base_triples\":{},\"rules\":{},\"repeat\":{repeat},\
         \"serial\":{{\"derived\":{serial_derived},\"elapsed_s\":{:.6},\
         \"triples_per_sec\":{:.1}}},\
         \"parallel\":[{}]}}\n",
        base.len(),
        rules.len(),
        serial_time.as_secs_f64(),
        serial_tps,
        rows.join(","),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_closure.json");
    println!("wrote {out_path}");
}
