//! **Figure 2** — per-phase overhead (reasoning, IO, synchronization,
//! aggregation) of the parallel run over the number of partitions, for
//! LUBM with the shared-file transport (the paper's implementation).
//!
//! Paper shape: reasoning time falls with k while IO + synchronization
//! grow, which is why the paper recommends an MPI-like transport — pass
//! `--comm channel` to see that ablation.
//!
//! ```text
//! cargo run --release -p owlpar-bench --bin fig2_overhead [-- --comm file|channel --ks 1,2,4,8,16]
//! ```

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_bench::datasets::{Dataset, DatasetConfig};
use owlpar_bench::runner::record_jsonl;
use owlpar_bench::table;
use owlpar_core::{run_parallel, CommMode, ParallelConfig, WireFormat};

fn main() {
    let (cfg, rest) = DatasetConfig::from_args(std::env::args().skip(1));
    let ks: Vec<usize> = rest
        .iter()
        .position(|a| a == "--ks")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
    let comm = match rest
        .iter()
        .position(|a| a == "--comm")
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
    {
        Some("channel") => CommMode::Channel,
        _ => CommMode::SharedFile {
            dir: None,
            format: WireFormat::NTriples,
        },
    };

    let graph = cfg.generate(Dataset::Lubm);
    println!("Figure 2: overhead of sub-tasks, LUBM ({} triples), comm={comm:?}\n", graph.len());

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &k in &ks {
        let mut g = graph.clone();
        let report = run_parallel(
            &mut g,
            &ParallelConfig {
                k,
                comm: comm.clone(),
                ..ParallelConfig::default()
            },
        )
        .expect("clean experiment run");
        let b = &report.breakdown;
        rows.push(vec![
            k.to_string(),
            table::f3(b.reason.as_secs_f64()),
            table::f3(b.io.as_secs_f64()),
            table::f3(b.sync.as_secs_f64()),
            table::f3(b.aggregation.as_secs_f64()),
            report.max_rounds().to_string(),
        ]);
        json.push(serde_json::json!({
            "k": k,
            "reason_s": b.reason.as_secs_f64(),
            "io_s": b.io.as_secs_f64(),
            "sync_s": b.sync.as_secs_f64(),
            "aggregation_s": b.aggregation.as_secs_f64(),
            "rounds": report.max_rounds(),
        }));
    }
    println!(
        "{}",
        table::render(
            &["k", "reason(s)", "io(s)", "sync(s)", "aggregate(s)", "rounds"],
            &rows
        )
    );
    let path = record_jsonl("fig2_overhead", &json);
    println!("rows recorded to {}", path.display());
}
