//! Speedup measurement shared by the figure binaries.

use owlpar_core::{run_parallel, run_serial, ParallelConfig, RunReport};
use owlpar_rdf::Graph;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

/// One (k, speedup) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupPoint {
    /// Worker count.
    pub k: usize,
    /// Serial wall time (same materialization strategy), seconds.
    pub serial_secs: f64,
    /// Parallel wall time (spawn→join), seconds.
    pub parallel_secs: f64,
    /// Slowest worker's pure reasoning time, seconds (Fig. 3's "slowest
    /// partition" series).
    pub slowest_reason_secs: f64,
    /// serial / parallel.
    pub speedup: f64,
    /// serial / slowest-reasoning (comm-free speedup).
    pub reason_speedup: f64,
    /// Rounds to quiescence.
    pub rounds: usize,
    /// Input-replication excess, when the run partitioned data.
    pub ir_excess: Option<f64>,
    /// Output-replication excess.
    pub or_excess: f64,
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Run the serial baseline once and the parallel configuration at each
/// `k`, returning one point per `k`. The input graph is cloned per run so
/// measurements are independent.
pub fn speedup_series(graph: &Graph, base: &ParallelConfig, ks: &[usize]) -> Vec<SpeedupPoint> {
    let (_, serial_time) = run_serial(&mut graph.clone(), base.materialization);
    ks.iter()
        .map(|&k| {
            let mut g = graph.clone();
            let report =
                run_parallel(&mut g, &base.with_k(k)).expect("clean benchmark run");
            point_from_report(&report, serial_time)
        })
        .collect()
}

/// Build a [`SpeedupPoint`] from a run report and a serial baseline.
pub fn point_from_report(report: &RunReport, serial_time: Duration) -> SpeedupPoint {
    let slowest_reason = report
        .workers
        .iter()
        .map(|w| w.reason_time)
        .max()
        .unwrap_or_default();
    SpeedupPoint {
        k: report.k,
        serial_secs: secs(serial_time),
        parallel_secs: secs(report.parallel_time),
        slowest_reason_secs: secs(slowest_reason),
        speedup: secs(serial_time) / secs(report.parallel_time).max(1e-9),
        reason_speedup: secs(serial_time) / secs(slowest_reason).max(1e-9),
        rounds: report.max_rounds(),
        ir_excess: report.partition_quality.as_ref().map(|q| q.ir_excess()),
        or_excess: report.output_replication,
    }
}

/// Append JSON lines to `target/experiments/<name>.jsonl` so experiment
/// outputs survive as artifacts.
pub fn record_jsonl<T: Serialize>(name: &str, rows: &[T]) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.jsonl"));
    let mut text = String::new();
    for r in rows {
        text.push_str(&serde_json::to_string(r).expect("serializable row"));
        text.push('\n');
    }
    let _ = std::fs::write(&path, text);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_datagen::{generate_lubm, LubmConfig};

    #[test]
    fn series_produces_point_per_k() {
        let g = generate_lubm(&LubmConfig::mini(2));
        let cfg = ParallelConfig::default().forward();
        let pts = speedup_series(&g, &cfg, &[1, 2]);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].k, 1);
        assert!(pts[0].speedup > 0.0);
        assert!(pts[1].rounds >= 1);
    }

    #[test]
    fn record_jsonl_writes_rows() {
        let pts = vec![serde_json::json!({"a": 1}), serde_json::json!({"a": 2})];
        let path = record_jsonl("unit_test_rows", &pts);
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), 2);
    }
}
