//! Partitioner benchmarks + the FM-refinement ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_horst::HorstReasoner;
use owlpar_datalog::MaterializationStrategy;
use owlpar_partition::multilevel::PartitionOptions;
use owlpar_partition::{partition_data, OwnershipPolicy};
use owlpar_rdf::vocab::RDF_TYPE;
use owlpar_rdf::{Graph, Term, Triple};

fn workload() -> (Graph, Vec<Triple>) {
    let mut g = generate_lubm(&LubmConfig {
        universities: 4,
        scale: 0.2,
        seed: 3,
    });
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    let inst = hr.instance_triples;
    (g, inst)
}

fn bench_policies(c: &mut Criterion) {
    let (g, inst) = workload();
    let rdf_type = g.dict.id(&Term::iri(RDF_TYPE));
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    group.bench_function("graph_refined_k8", |b| {
        b.iter(|| {
            partition_data(
                &inst,
                &g.dict,
                rdf_type,
                8,
                &OwnershipPolicy::Graph(PartitionOptions::default()),
            )
            .edge_cut
        })
    });
    group.bench_function("graph_unrefined_k8", |b| {
        b.iter(|| {
            partition_data(
                &inst,
                &g.dict,
                rdf_type,
                8,
                &OwnershipPolicy::Graph(PartitionOptions {
                    refine: false,
                    ..PartitionOptions::default()
                }),
            )
            .edge_cut
        })
    });
    group.bench_function("hash_k8", |b| {
        b.iter(|| {
            partition_data(&inst, &g.dict, rdf_type, 8, &OwnershipPolicy::Hash { seed: 1 }).k
        })
    });
    group.bench_function("domain_k8", |b| {
        b.iter(|| {
            partition_data(&inst, &g.dict, rdf_type, 8, &OwnershipPolicy::Domain(None)).k
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
