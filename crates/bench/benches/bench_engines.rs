//! Engine ablations called out in DESIGN.md:
//! * semi-naive vs naive forward chaining,
//! * backward tabling scope (per-query / per-sweep / none),
//! * plain backward vs the Jena candidate-enumeration cost model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_datalog::backward::{BackwardEngine, TableScope};
use owlpar_datalog::forward::{forward_closure, naive_closure};
use owlpar_horst::HorstReasoner;
use owlpar_datalog::MaterializationStrategy;
use owlpar_rdf::TripleStore;

fn workload() -> (TripleStore, Vec<owlpar_datalog::Rule>) {
    let mut g = generate_lubm(&LubmConfig {
        universities: 1,
        scale: 0.08,
        seed: 1,
    });
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    (g.store.clone(), hr.rules().to_vec())
}

fn bench_forward_ablation(c: &mut Criterion) {
    let (store, rules) = workload();
    let mut group = c.benchmark_group("engines/forward");
    group.sample_size(10);
    group.bench_function("semi_naive", |b| {
        b.iter_batched(
            || store.clone(),
            |mut s| forward_closure(&mut s, &rules),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("naive", |b| {
        b.iter_batched(
            || store.clone(),
            |mut s| naive_closure(&mut s, &rules),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_tabling_ablation(c: &mut Criterion) {
    let (store, rules) = workload();
    let mut group = c.benchmark_group("engines/backward");
    group.sample_size(10);
    for (name, scope) in [
        ("per_query", TableScope::PerQuery),
        ("per_sweep", TableScope::PerSweep),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || store.clone(),
                |mut s| BackwardEngine::new(&rules, scope).materialize(&mut s),
                BatchSize::LargeInput,
            )
        });
    }
    group.bench_function("jena_candidates", |b| {
        b.iter_batched(
            || store.clone(),
            |mut s| {
                BackwardEngine::new(&rules, TableScope::PerQuery).materialize_jena(&mut s)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_forward_ablation, bench_tabling_ablation);
criterion_main!(benches);
