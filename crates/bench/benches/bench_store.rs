//! Micro-benchmarks of the triple store: insertion and every pattern
//! shape the datalog joins use.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use owlpar_rdf::{NodeId, Triple, TriplePattern, TripleStore};

fn synth(n: u32) -> Vec<Triple> {
    // pseudo-random but deterministic triples over a mid-sized alphabet
    (0..n)
        .map(|i| {
            let s = (i.wrapping_mul(2654435761)) % (n / 4 + 1);
            let p = i % 8;
            let o = (i.wrapping_mul(40503)) % (n / 4 + 1);
            Triple::new(NodeId(s), NodeId(1000 + p), NodeId(o))
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let triples = synth(50_000);
    c.bench_function("store/insert_50k", |b| {
        b.iter_batched(
            TripleStore::new,
            |mut store| {
                for &t in &triples {
                    store.insert(t);
                }
                store
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_patterns(c: &mut Criterion) {
    let store: TripleStore = synth(50_000).into_iter().collect();
    let s = NodeId(17);
    let p = NodeId(1003);
    let o = NodeId(23);
    let mut group = c.benchmark_group("store/match");
    group.bench_function("s__", |b| {
        b.iter(|| store.count_matches(TriplePattern::new(Some(s), None, None)))
    });
    group.bench_function("_p_", |b| {
        b.iter(|| store.count_matches(TriplePattern::new(None, Some(p), None)))
    });
    group.bench_function("__o", |b| {
        b.iter(|| store.count_matches(TriplePattern::new(None, None, Some(o))))
    });
    group.bench_function("sp_", |b| {
        b.iter(|| store.count_matches(TriplePattern::new(Some(s), Some(p), None)))
    });
    group.bench_function("spo", |b| {
        b.iter(|| store.contains(&Triple::new(s, p, o)))
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_patterns);
criterion_main!(benches);
