//! Communication-backend benchmarks: the channel-vs-file ablation behind
//! Fig. 2's "use MPI instead of files" recommendation.

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use owlpar_core::comm::{build_fabric, CommMode, WireFormat};
use owlpar_rdf::{Dictionary, NodeId, Triple};
use std::sync::Arc;

fn batch(n: u32) -> Vec<Triple> {
    (0..n)
        .map(|i| Triple::new(NodeId(i % 500), NodeId(500 + i % 8), NodeId((i * 7) % 500)))
        .collect()
}

fn dict() -> Arc<Dictionary> {
    let mut d = Dictionary::new();
    for i in 0..600 {
        d.intern_iri(format!("http://bench.example.org/resource/n{i}"));
    }
    Arc::new(d)
}

fn bench_transports(c: &mut Criterion) {
    let msgs = batch(5000);
    let d = dict();
    let mut group = c.benchmark_group("comm/roundtrip_5k");
    group.sample_size(20);
    let modes: [(&str, CommMode); 3] = [
        ("channel", CommMode::Channel),
        (
            "file_binary",
            CommMode::SharedFile {
                dir: None,
                format: WireFormat::Binary,
            },
        ),
        (
            "file_ntriples",
            CommMode::SharedFile {
                dir: None,
                format: WireFormat::NTriples,
            },
        ),
    ];
    for (name, mode) in modes {
        group.bench_function(name, |b| {
            let mut fabric = build_fabric(2, &mode, Arc::clone(&d)).expect("fabric");
            let mut w1 = fabric.pop().unwrap();
            let mut w0 = fabric.pop().unwrap();
            b.iter(|| {
                w0.send(1, &msgs).expect("send");
                let got = w1.collect().expect("collect");
                let _ = w0.collect().expect("collect"); // advance w0's round too
                got.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
