//! End-to-end parallel materialization benchmark (forward engine so the
//! numbers isolate the runtime, not the deliberately slow Jena model).

// Benchmarks and experiment binaries abort loudly on failure.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use owlpar_core::{run_parallel, ParallelConfig, PartitioningStrategy};
use owlpar_datagen::{generate_lubm, LubmConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let graph = generate_lubm(&LubmConfig {
        universities: 2,
        scale: 0.1,
        seed: 5,
    });
    let mut group = c.benchmark_group("parallel/lubm_forward");
    group.sample_size(10);
    for k in [1usize, 2, 4] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter_batched(
                || graph.clone(),
                |mut g| {
                    run_parallel(
                        &mut g,
                        &ParallelConfig {
                            k,
                            strategy: PartitioningStrategy::data_graph(),
                            ..ParallelConfig::default()
                        }
                        .forward(),
                    )
                    .expect("clean benchmark run")
                    .derived
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
