//! BGP execution: index-driven nested-loop joins with greedy
//! most-bound-first ordering (the same join discipline the datalog
//! engine uses, so query performance matches closure performance).

use crate::ast::{Query, QueryForm};
use owlpar_datalog::ast::Bindings;
use owlpar_rdf::fx::FxHashSet;
use owlpar_rdf::{NodeId, TripleSource};

/// One result row: the values of the projected variables, in projection
/// order.
pub type Row = Vec<NodeId>;

/// Evaluate a SELECT query; ASK queries yield zero or one empty row
/// (prefer [`ask`]). Generic over [`TripleSource`] so queries run
/// identically against a mutable `TripleStore`, a frozen store, or the
/// serving layer's base+delta overlay snapshots.
pub fn execute<S: TripleSource + ?Sized>(store: &S, q: &Query) -> Vec<Row> {
    let projected = q.projected();
    let mut rows: Vec<Row> = Vec::new();
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut remaining: Vec<usize> = (0..q.patterns.len()).collect();
    let bindings: Bindings = vec![None; q.var_names.len()];
    let early_exit = q.form == QueryForm::Ask;
    join(
        store,
        q,
        &mut remaining,
        bindings,
        &projected,
        &mut rows,
        &mut seen,
        early_exit,
    );
    rows
}

/// Evaluate an ASK query (or "does this SELECT have any solution").
pub fn ask<S: TripleSource + ?Sized>(store: &S, q: &Query) -> bool {
    let mut probe = q.clone();
    probe.form = QueryForm::Ask;
    probe.limit = Some(1);
    !execute(store, &probe).is_empty()
}

#[allow(clippy::too_many_arguments)]
fn join<S: TripleSource + ?Sized>(
    store: &S,
    q: &Query,
    remaining: &mut Vec<usize>,
    bindings: Bindings,
    projected: &[u16],
    rows: &mut Vec<Row>,
    seen: &mut FxHashSet<Row>,
    early_exit: bool,
) -> bool {
    if let Some(limit) = q.limit {
        if rows.len() >= limit {
            return true; // saturated
        }
    }
    if remaining.is_empty() {
        // The parser rejects projections of variables that appear in no
        // pattern, so every projected slot is bound once all patterns
        // matched; an unbound slot would mean a parser bug — emit nothing.
        let Some(row) = projected
            .iter()
            .map(|&i| bindings[i as usize])
            .collect::<Option<Row>>()
        else {
            return false;
        };
        if !q.distinct || seen.insert(row.clone()) {
            rows.push(row);
        }
        return early_exit || q.limit.is_some_and(|l| rows.len() >= l);
    }
    // cheapest next pattern: most bound positions under current bindings
    // (`remaining` is non-empty here, so the max always exists).
    let Some((slot, _)) = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, &i)| q.patterns[i].to_pattern(&bindings).bound_count())
    else {
        return false;
    };
    let atom_idx = remaining.swap_remove(slot);
    let atom = q.patterns[atom_idx];
    let pat = atom.to_pattern(&bindings);
    let mut done = false;
    let mut matches = Vec::new();
    store.for_each_match(pat, |t| matches.push(t));
    for t in matches {
        if done {
            break;
        }
        if let Some(b) = atom.match_triple(&t, &bindings) {
            done = join(store, q, remaining, b, projected, rows, seen, early_exit);
        }
    }
    remaining.push(atom_idx);
    done
}

/// Decode a result row into display strings via the dictionary.
pub fn render_row(dict: &owlpar_rdf::Dictionary, row: &Row) -> Vec<String> {
    row.iter()
        .map(|&id| {
            dict.term(id)
                .map(|t| t.to_string())
                .unwrap_or_else(|| format!("{id}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::parser::parse_query;
    use owlpar_rdf::{Graph, Term};

    fn campus() -> Graph {
        let mut g = Graph::new();
        let tr = [
            ("alice", "type", "Student"),
            ("bob", "type", "Student"),
            ("carol", "type", "Professor"),
            ("alice", "takes", "cs101"),
            ("alice", "takes", "cs102"),
            ("bob", "takes", "cs101"),
            ("carol", "teaches", "cs101"),
            ("carol", "teaches", "cs102"),
        ];
        for (s, p, o) in tr {
            g.insert_iris(
                format!("http://x/{s}"),
                format!("http://x/{p}"),
                format!("http://x/{o}"),
            );
        }
        g
    }

    fn run(g: &mut Graph, src: &str) -> Vec<Vec<String>> {
        let q = parse_query(src, &mut g.dict).unwrap();
        let mut rows: Vec<Vec<String>> = execute(&g.store, &q)
            .iter()
            .map(|r| render_row(&g.dict, r))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn single_pattern_select() {
        let mut g = campus();
        let rows = run(
            &mut g,
            "SELECT ?s WHERE { ?s <http://x/type> <http://x/Student> }",
        );
        assert_eq!(rows, vec![vec!["<http://x/alice>"], vec!["<http://x/bob>"]]);
    }

    #[test]
    fn two_pattern_join() {
        let mut g = campus();
        // students in a course carol teaches
        let rows = run(
            &mut g,
            "SELECT DISTINCT ?s WHERE { \
                ?s <http://x/takes> ?c . \
                <http://x/carol> <http://x/teaches> ?c . }",
        );
        assert_eq!(rows, vec![vec!["<http://x/alice>"], vec!["<http://x/bob>"]]);
    }

    #[test]
    fn three_way_join_projects_in_order() {
        let mut g = campus();
        let rows = run(
            &mut g,
            "SELECT ?c ?s WHERE { \
                ?s <http://x/type> <http://x/Student> . \
                ?s <http://x/takes> ?c . \
                ?t <http://x/teaches> ?c . }",
        );
        assert_eq!(rows.len(), 3); // (cs101,alice),(cs101,bob),(cs102,alice)
        assert!(rows.iter().all(|r| r[0].contains("cs")));
    }

    #[test]
    fn distinct_dedupes() {
        let mut g = campus();
        let with = run(&mut g, "SELECT DISTINCT ?c WHERE { ?s <http://x/takes> ?c }");
        let without = run(&mut g, "SELECT ?c WHERE { ?s <http://x/takes> ?c }");
        assert_eq!(with.len(), 2);
        assert_eq!(without.len(), 3);
    }

    #[test]
    fn limit_caps_rows() {
        let mut g = campus();
        let rows = run(&mut g, "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 3");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn ask_true_and_false() {
        let mut g = campus();
        let yes = parse_query(
            "ASK { <http://x/alice> <http://x/takes> <http://x/cs101> }",
            &mut g.dict,
        )
        .unwrap();
        assert!(ask(&g.store, &yes));
        let no = parse_query(
            "ASK { <http://x/bob> <http://x/teaches> ?c }",
            &mut g.dict,
        )
        .unwrap();
        assert!(!ask(&g.store, &no));
    }

    #[test]
    fn unbound_query_on_empty_store() {
        let mut g = Graph::new();
        let q = parse_query("SELECT ?s WHERE { ?s ?p ?o }", &mut g.dict).unwrap();
        assert!(execute(&g.store, &q).is_empty());
    }

    #[test]
    fn shared_variable_within_pattern() {
        let mut g = campus();
        g.insert_iris("http://x/n", "http://x/loop", "http://x/n");
        let rows = run(&mut g, "SELECT ?n WHERE { ?n <http://x/loop> ?n }");
        assert_eq!(rows, vec![vec!["<http://x/n>"]]);
    }

    #[test]
    fn literal_constants_match() {
        let mut g = campus();
        g.insert_terms(
            Term::iri("http://x/alice"),
            Term::iri("http://x/name"),
            Term::literal("Alice"),
        );
        let rows = run(&mut g, "SELECT ?s WHERE { ?s <http://x/name> \"Alice\" }");
        assert_eq!(rows, vec![vec!["<http://x/alice>"]]);
    }

    #[test]
    fn unbound_predicate_pattern() {
        let mut g = campus();
        let rows = run(
            &mut g,
            "SELECT ?p WHERE { <http://x/alice> ?p <http://x/cs101> }",
        );
        assert_eq!(rows, vec![vec!["<http://x/takes>"]]);
    }

    #[test]
    fn predicate_variable_joined_across_patterns() {
        let mut g = campus();
        // same predicate relating two subjects to the same object
        let rows = run(
            &mut g,
            "SELECT DISTINCT ?p WHERE { \
               <http://x/alice> ?p ?c . \
               <http://x/bob> ?p ?c . }",
        );
        assert_eq!(
            rows,
            vec![vec!["<http://x/takes>"], vec!["<http://x/type>"]]
        );
    }

    #[test]
    fn frozen_parse_executes_like_mutable_parse() {
        let mut g = campus();
        let src = "SELECT ?s WHERE { ?s <http://x/type> <http://x/Student> }";
        let q_mut = parse_query(src, &mut g.dict).unwrap();
        let q_frozen = crate::parser::parse_query_frozen(src, &g.dict).unwrap();
        assert_eq!(execute(&g.store, &q_mut), execute(&g.store, &q_frozen));
    }

    #[test]
    fn frozen_query_with_unknown_constant_matches_nothing() {
        let g = campus();
        let before = g.dict.len();
        let q = crate::parser::parse_query_frozen(
            "SELECT ?s WHERE { ?s <http://x/type> <http://x/Dean> }",
            &g.dict,
        )
        .unwrap();
        assert!(execute(&g.store, &q).is_empty());
        assert_eq!(g.dict.len(), before);
    }

    #[test]
    fn cross_product_patterns_allowed() {
        let mut g = campus();
        let rows = run(
            &mut g,
            "SELECT ?a ?b WHERE { \
               ?a <http://x/type> <http://x/Professor> . \
               ?b <http://x/type> <http://x/Student> . }",
        );
        assert_eq!(rows.len(), 2); // carol × {alice, bob}
    }
}
