//! The SPARQL-lite surface syntax.
//!
//! Supported grammar (enough for the whole LUBM query mix):
//!
//! ```text
//! query    := prefix* ( select | ask )
//! prefix   := 'PREFIX' NAME ':' '<' IRI '>'
//! select   := 'SELECT' 'DISTINCT'? ( '*' | var+ ) 'WHERE' block limit?
//! ask      := 'ASK' block
//! block    := '{' ( pattern '.' )* pattern? '}'
//! pattern  := term term term
//! term     := var | '<' IRI '>' | NAME ':' NAME | '"' text '"' | 'a'
//! limit    := 'LIMIT' INT
//! ```
//!
//! `a` abbreviates `rdf:type` as in Turtle/SPARQL. The builtin prefixes
//! `rdf:`, `rdfs:`, `owl:`, `xsd:` are predeclared.

use crate::ast::{Query, QueryForm};
use owlpar_datalog::ast::{Atom, TermPat};
use owlpar_rdf::{vocab, Dictionary, NodeId, Term};
use std::collections::HashMap;

/// Query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a SPARQL-lite query, interning constants into `dict`.
pub fn parse_query(src: &str, dict: &mut Dictionary) -> Result<Query, QueryParseError> {
    parse_with(src, Interner::Mut(dict))
}

/// Parse a SPARQL-lite query against a *read-only* dictionary.
///
/// This is the serving-path variant: concurrent readers hold shared
/// snapshots whose dictionary must not grow. Constants already present in
/// `dict` resolve to their ids; constants the dictionary has never seen
/// get distinct synthetic ids at or above `dict.len()`. Every id a store
/// built against `dict` can contain is below `dict.len()`, so a synthetic
/// id matches nothing — the pattern simply yields no solutions, exactly
/// as an unknown IRI should.
pub fn parse_query_frozen(src: &str, dict: &Dictionary) -> Result<Query, QueryParseError> {
    parse_with(
        src,
        Interner::Frozen {
            dict,
            next_synthetic: dict.len() as u32,
        },
    )
}

fn parse_with(src: &str, interner: Interner<'_>) -> Result<Query, QueryParseError> {
    let mut p = P {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        interner,
        prefixes: [
            ("rdf".to_string(), vocab::RDF_NS.to_string()),
            ("rdfs".to_string(), vocab::RDFS_NS.to_string()),
            ("owl".to_string(), vocab::OWL_NS.to_string()),
            ("xsd".to_string(), vocab::XSD_NS.to_string()),
        ]
        .into_iter()
        .collect(),
        vars: Vec::new(),
    };
    p.parse()
}

/// How the parser maps constant terms to [`NodeId`]s.
enum Interner<'d> {
    /// Grow the dictionary as needed (the materialization path).
    Mut(&'d mut Dictionary),
    /// Never mutate the dictionary; unknown constants get fresh ids
    /// beyond `dict.len()` that cannot occur in any store encoded with
    /// this dictionary (the concurrent serving path).
    Frozen {
        dict: &'d Dictionary,
        next_synthetic: u32,
    },
}

impl Interner<'_> {
    fn resolve(&mut self, term: Term) -> NodeId {
        match self {
            Interner::Mut(dict) => dict.intern(term),
            Interner::Frozen {
                dict,
                next_synthetic,
            } => match dict.id(&term) {
                Some(id) => id,
                None => {
                    // Distinct per unknown constant: two different unknown
                    // IRIs must not accidentally compare equal in a join.
                    let id = NodeId(*next_synthetic);
                    *next_synthetic += 1;
                    id
                }
            },
        }
    }
}

struct P<'a, 'd> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    interner: Interner<'d>,
    prefixes: HashMap<String, String>,
    vars: Vec<String>,
}

impl P<'_, '_> {
    fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        loop {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) == Some(&b'#') {
                while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = rest.as_bytes().get(kw.len());
            let boundary = after.is_none_or(|c| !c.is_ascii_alphanumeric());
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, QueryParseError> {
        self.ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), QueryParseError> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse(&mut self) -> Result<Query, QueryParseError> {
        while self.keyword("PREFIX") {
            let name = self.ident()?;
            self.expect(b':')?;
            self.expect(b'<')?;
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|&c| c != b'>') {
                self.pos += 1;
            }
            let iri = self.src[start..self.pos].to_string();
            self.expect(b'>')?;
            self.prefixes.insert(name, iri);
        }

        let (form, projection, distinct) = if self.keyword("SELECT") {
            let distinct = self.keyword("DISTINCT");
            let mut projection: Vec<u16> = Vec::new();
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'*') {
                self.pos += 1;
            } else {
                loop {
                    self.ws();
                    if self.bytes.get(self.pos) != Some(&b'?') {
                        break;
                    }
                    self.pos += 1;
                    let name = self.ident()?;
                    projection.push(self.var_index(name));
                }
                if projection.is_empty() {
                    return Err(self.err("SELECT needs '*' or at least one ?var"));
                }
            }
            (QueryForm::Select, projection, distinct)
        } else if self.keyword("ASK") {
            (QueryForm::Ask, Vec::new(), false)
        } else {
            return Err(self.err("expected SELECT or ASK"));
        };

        if form == QueryForm::Select && !self.keyword("WHERE") {
            return Err(self.err("expected WHERE"));
        }
        self.keyword("WHERE"); // optional before ASK's block

        self.expect(b'{')?;
        let mut patterns = Vec::new();
        loop {
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                break;
            }
            let s = self.term()?;
            let p = self.term()?;
            let o = self.term()?;
            patterns.push(Atom::new(s, p, o));
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'.') {
                self.pos += 1;
            }
        }
        if patterns.is_empty() {
            return Err(self.err("empty graph pattern"));
        }

        let limit = if self.keyword("LIMIT") {
            self.ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            Some(
                self.src[start..self.pos]
                    .parse()
                    .map_err(|_| self.err("LIMIT needs an integer"))?,
            )
        } else {
            None
        };

        self.ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after query"));
        }
        // Every projected variable must be bound by at least one pattern,
        // or execution could never produce a value for it.
        for &i in &projection {
            let bound = patterns.iter().any(|a| {
                [a.s, a.p, a.o]
                    .into_iter()
                    .any(|t| t == TermPat::Var(i))
            });
            if !bound {
                return Err(self.err(format!(
                    "projected variable ?{} does not appear in any pattern",
                    self.vars[i as usize]
                )));
            }
        }
        Ok(Query {
            form,
            var_names: std::mem::take(&mut self.vars),
            projection,
            patterns,
            distinct,
            limit,
        })
    }

    fn var_index(&mut self, name: String) -> u16 {
        if let Some(i) = self.vars.iter().position(|v| *v == name) {
            return i as u16;
        }
        self.vars.push(name);
        (self.vars.len() - 1) as u16
    }

    fn term(&mut self) -> Result<TermPat, QueryParseError> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'?') => {
                self.pos += 1;
                let name = self.ident()?;
                Ok(TermPat::Var(self.var_index(name)))
            }
            Some(b'<') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'>') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated IRI"));
                }
                let iri = &self.src[start..self.pos];
                self.pos += 1;
                Ok(TermPat::Const(self.interner.resolve(Term::iri(iri))))
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'"') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated literal"));
                }
                let lit = &self.src[start..self.pos];
                self.pos += 1;
                Ok(TermPat::Const(self.interner.resolve(Term::literal(lit))))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let first = self.ident()?;
                self.ws();
                if self.bytes.get(self.pos) == Some(&b':') {
                    self.pos += 1;
                    let local = self.ident()?;
                    let ns = self
                        .prefixes
                        .get(&first)
                        .ok_or_else(|| self.err(format!("unknown prefix '{first}'")))?;
                    let iri = format!("{ns}{local}");
                    Ok(TermPat::Const(self.interner.resolve(Term::iri(iri))))
                } else if first == "a" {
                    Ok(TermPat::Const(
                        self.interner.resolve(Term::iri(vocab::RDF_TYPE)),
                    ))
                } else {
                    Err(self.err(format!("bare word '{first}' (did you mean a prefixed name?)")))
                }
            }
            _ => Err(self.err("expected ?var, <iri>, prefix:name, \"literal\" or 'a'")),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn parse(src: &str) -> Query {
        let mut d = Dictionary::new();
        parse_query(src, &mut d).unwrap()
    }

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT ?x WHERE { ?x a <http://x/C> . }");
        assert_eq!(q.form, QueryForm::Select);
        assert_eq!(q.var_names, vec!["x"]);
        assert_eq!(q.patterns.len(), 1);
        assert!(!q.distinct);
        assert_eq!(q.limit, None);
    }

    #[test]
    fn parses_multi_pattern_with_prefixes() {
        let q = parse(
            "PREFIX ub: <http://u/> \
             SELECT DISTINCT ?s ?c WHERE { ?s a ub:Student . ?s ub:takes ?c . } LIMIT 10",
        );
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.projected_names(), vec!["s", "c"]);
    }

    #[test]
    fn select_star_projects_all_vars() {
        let q = parse("SELECT * WHERE { ?a ?p ?b . }");
        assert_eq!(q.projected_names(), vec!["a", "p", "b"]);
    }

    #[test]
    fn parses_ask() {
        let q = parse("ASK { <http://x/a> <http://x/p> \"lit\" }");
        assert_eq!(q.form, QueryForm::Ask);
        assert!(q.var_names.is_empty());
    }

    #[test]
    fn same_var_same_index() {
        let q = parse("SELECT ?x WHERE { ?x ?p ?x . }");
        assert_eq!(q.var_names.len(), 2);
        assert_eq!(q.patterns[0].s, q.patterns[0].o);
    }

    #[test]
    fn keyword_case_insensitive_and_comments() {
        let q = parse("# find them all\nselect ?x where { ?x a <http://x/C> }");
        assert_eq!(q.var_names, vec!["x"]);
    }

    #[test]
    fn builtin_prefixes_work() {
        let mut d = Dictionary::new();
        let q = parse_query("SELECT ?x WHERE { ?x rdf:type owl:Class }", &mut d).unwrap();
        let pat = q.patterns[0];
        let p = pat.p.as_const().unwrap();
        assert_eq!(d.term(p).unwrap(), &Term::iri(vocab::RDF_TYPE));
    }

    #[test]
    fn errors() {
        let mut d = Dictionary::new();
        for (src, why) in [
            ("SELECT WHERE { ?x a ?y }", "no projection"),
            ("SELECT ?x { ?x a ?y }", "missing WHERE"),
            ("SELECT ?x WHERE { }", "empty pattern"),
            ("SELECT ?x WHERE { ?x a foo:bar }", "unknown prefix"),
            ("FROB ?x WHERE { ?x a ?y }", "bad form"),
            ("SELECT ?x WHERE { ?x a ?y } garbage", "trailing"),
        ] {
            assert!(parse_query(src, &mut d).is_err(), "{why}");
        }
    }

    #[test]
    fn empty_bgp_is_a_typed_error_for_both_forms() {
        let mut d = Dictionary::new();
        for src in ["SELECT * WHERE { }", "ASK { }"] {
            let e = parse_query(src, &mut d).unwrap_err();
            assert!(e.message.contains("empty graph pattern"), "{src}: {e}");
        }
    }

    #[test]
    fn projected_var_missing_from_patterns_is_rejected() {
        let mut d = Dictionary::new();
        let e = parse_query("SELECT ?ghost WHERE { ?s ?p ?o }", &mut d).unwrap_err();
        assert!(e.message.contains("?ghost"), "{e}");
        // ...but projecting a subset that *is* bound stays fine.
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o }", &mut d).is_ok());
    }

    #[test]
    fn frozen_parse_matches_mutable_parse_on_known_terms() {
        let mut d = Dictionary::new();
        let src = "SELECT ?x WHERE { ?x rdf:type <http://x/C> . ?x <http://x/p> \"v\" }";
        let q_mut = parse_query(src, &mut d).unwrap();
        let before = d.len();
        let q_frozen = parse_query_frozen(src, &d).unwrap();
        assert_eq!(d.len(), before, "frozen parse must not grow the dict");
        assert_eq!(q_mut.patterns, q_frozen.patterns);
        assert_eq!(q_mut.var_names, q_frozen.var_names);
    }

    #[test]
    fn frozen_parse_gives_unknown_constants_distinct_out_of_range_ids() {
        let mut d = Dictionary::new();
        d.intern(Term::iri("http://x/known"));
        let n = d.len() as u32;
        let q = parse_query_frozen(
            "ASK { <http://x/unknownA> <http://x/known> <http://x/unknownB> }",
            &d,
        )
        .unwrap();
        assert_eq!(d.len() as u32, n, "dictionary untouched");
        let pat = q.patterns[0];
        let s = pat.s.as_const().unwrap();
        let o = pat.o.as_const().unwrap();
        assert!(s.0 >= n && o.0 >= n, "synthetic ids sit beyond the dict");
        assert_ne!(s, o, "distinct unknowns get distinct ids");
        assert_eq!(pat.p.as_const().unwrap().0, 0, "known term keeps its id");
    }

    #[test]
    fn frozen_parse_reports_syntax_errors_too() {
        let d = Dictionary::new();
        assert!(parse_query_frozen("SELECT ?x WHERE { }", &d).is_err());
    }
}
