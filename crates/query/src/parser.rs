//! The SPARQL-lite surface syntax.
//!
//! Supported grammar (enough for the whole LUBM query mix):
//!
//! ```text
//! query    := prefix* ( select | ask )
//! prefix   := 'PREFIX' NAME ':' '<' IRI '>'
//! select   := 'SELECT' 'DISTINCT'? ( '*' | var+ ) 'WHERE' block limit?
//! ask      := 'ASK' block
//! block    := '{' ( pattern '.' )* pattern? '}'
//! pattern  := term term term
//! term     := var | '<' IRI '>' | NAME ':' NAME | '"' text '"' | 'a'
//! limit    := 'LIMIT' INT
//! ```
//!
//! `a` abbreviates `rdf:type` as in Turtle/SPARQL. The builtin prefixes
//! `rdf:`, `rdfs:`, `owl:`, `xsd:` are predeclared.

use crate::ast::{Query, QueryForm};
use owlpar_datalog::ast::{Atom, TermPat};
use owlpar_rdf::{vocab, Dictionary, Term};
use std::collections::HashMap;

/// Query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a SPARQL-lite query, interning constants into `dict`.
pub fn parse_query(src: &str, dict: &mut Dictionary) -> Result<Query, QueryParseError> {
    let mut p = P {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        dict,
        prefixes: [
            ("rdf".to_string(), vocab::RDF_NS.to_string()),
            ("rdfs".to_string(), vocab::RDFS_NS.to_string()),
            ("owl".to_string(), vocab::OWL_NS.to_string()),
            ("xsd".to_string(), vocab::XSD_NS.to_string()),
        ]
        .into_iter()
        .collect(),
        vars: Vec::new(),
    };
    p.parse()
}

struct P<'a, 'd> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    dict: &'d mut Dictionary,
    prefixes: HashMap<String, String>,
    vars: Vec<String>,
}

impl P<'_, '_> {
    fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        loop {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) == Some(&b'#') {
                while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = rest.as_bytes().get(kw.len());
            let boundary = after.is_none_or(|c| !c.is_ascii_alphanumeric());
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, QueryParseError> {
        self.ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), QueryParseError> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse(&mut self) -> Result<Query, QueryParseError> {
        while self.keyword("PREFIX") {
            let name = self.ident()?;
            self.expect(b':')?;
            self.expect(b'<')?;
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|&c| c != b'>') {
                self.pos += 1;
            }
            let iri = self.src[start..self.pos].to_string();
            self.expect(b'>')?;
            self.prefixes.insert(name, iri);
        }

        let (form, projection, distinct) = if self.keyword("SELECT") {
            let distinct = self.keyword("DISTINCT");
            let mut projection: Vec<u16> = Vec::new();
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'*') {
                self.pos += 1;
            } else {
                loop {
                    self.ws();
                    if self.bytes.get(self.pos) != Some(&b'?') {
                        break;
                    }
                    self.pos += 1;
                    let name = self.ident()?;
                    projection.push(self.var_index(name));
                }
                if projection.is_empty() {
                    return Err(self.err("SELECT needs '*' or at least one ?var"));
                }
            }
            (QueryForm::Select, projection, distinct)
        } else if self.keyword("ASK") {
            (QueryForm::Ask, Vec::new(), false)
        } else {
            return Err(self.err("expected SELECT or ASK"));
        };

        if form == QueryForm::Select && !self.keyword("WHERE") {
            return Err(self.err("expected WHERE"));
        }
        self.keyword("WHERE"); // optional before ASK's block

        self.expect(b'{')?;
        let mut patterns = Vec::new();
        loop {
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                break;
            }
            let s = self.term()?;
            let p = self.term()?;
            let o = self.term()?;
            patterns.push(Atom::new(s, p, o));
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'.') {
                self.pos += 1;
            }
        }
        if patterns.is_empty() {
            return Err(self.err("empty graph pattern"));
        }

        let limit = if self.keyword("LIMIT") {
            self.ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            Some(
                self.src[start..self.pos]
                    .parse()
                    .map_err(|_| self.err("LIMIT needs an integer"))?,
            )
        } else {
            None
        };

        self.ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after query"));
        }
        Ok(Query {
            form,
            var_names: std::mem::take(&mut self.vars),
            projection,
            patterns,
            distinct,
            limit,
        })
    }

    fn var_index(&mut self, name: String) -> u16 {
        if let Some(i) = self.vars.iter().position(|v| *v == name) {
            return i as u16;
        }
        self.vars.push(name);
        (self.vars.len() - 1) as u16
    }

    fn term(&mut self) -> Result<TermPat, QueryParseError> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'?') => {
                self.pos += 1;
                let name = self.ident()?;
                Ok(TermPat::Var(self.var_index(name)))
            }
            Some(b'<') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'>') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated IRI"));
                }
                let iri = &self.src[start..self.pos];
                self.pos += 1;
                Ok(TermPat::Const(self.dict.intern(Term::iri(iri))))
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'"') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated literal"));
                }
                let lit = &self.src[start..self.pos];
                self.pos += 1;
                Ok(TermPat::Const(self.dict.intern(Term::literal(lit))))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let first = self.ident()?;
                self.ws();
                if self.bytes.get(self.pos) == Some(&b':') {
                    self.pos += 1;
                    let local = self.ident()?;
                    let ns = self
                        .prefixes
                        .get(&first)
                        .ok_or_else(|| self.err(format!("unknown prefix '{first}'")))?;
                    let iri = format!("{ns}{local}");
                    Ok(TermPat::Const(self.dict.intern(Term::iri(iri))))
                } else if first == "a" {
                    Ok(TermPat::Const(self.dict.intern(Term::iri(vocab::RDF_TYPE))))
                } else {
                    Err(self.err(format!("bare word '{first}' (did you mean a prefixed name?)")))
                }
            }
            _ => Err(self.err("expected ?var, <iri>, prefix:name, \"literal\" or 'a'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Query {
        let mut d = Dictionary::new();
        parse_query(src, &mut d).unwrap()
    }

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT ?x WHERE { ?x a <http://x/C> . }");
        assert_eq!(q.form, QueryForm::Select);
        assert_eq!(q.var_names, vec!["x"]);
        assert_eq!(q.patterns.len(), 1);
        assert!(!q.distinct);
        assert_eq!(q.limit, None);
    }

    #[test]
    fn parses_multi_pattern_with_prefixes() {
        let q = parse(
            "PREFIX ub: <http://u/> \
             SELECT DISTINCT ?s ?c WHERE { ?s a ub:Student . ?s ub:takes ?c . } LIMIT 10",
        );
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.projected_names(), vec!["s", "c"]);
    }

    #[test]
    fn select_star_projects_all_vars() {
        let q = parse("SELECT * WHERE { ?a ?p ?b . }");
        assert_eq!(q.projected_names(), vec!["a", "p", "b"]);
    }

    #[test]
    fn parses_ask() {
        let q = parse("ASK { <http://x/a> <http://x/p> \"lit\" }");
        assert_eq!(q.form, QueryForm::Ask);
        assert!(q.var_names.is_empty());
    }

    #[test]
    fn same_var_same_index() {
        let q = parse("SELECT ?x WHERE { ?x ?p ?x . }");
        assert_eq!(q.var_names.len(), 2);
        assert_eq!(q.patterns[0].s, q.patterns[0].o);
    }

    #[test]
    fn keyword_case_insensitive_and_comments() {
        let q = parse("# find them all\nselect ?x where { ?x a <http://x/C> }");
        assert_eq!(q.var_names, vec!["x"]);
    }

    #[test]
    fn builtin_prefixes_work() {
        let mut d = Dictionary::new();
        let q = parse_query("SELECT ?x WHERE { ?x rdf:type owl:Class }", &mut d).unwrap();
        let pat = q.patterns[0];
        let p = pat.p.as_const().unwrap();
        assert_eq!(d.term(p).unwrap(), &Term::iri(vocab::RDF_TYPE));
    }

    #[test]
    fn errors() {
        let mut d = Dictionary::new();
        for (src, why) in [
            ("SELECT WHERE { ?x a ?y }", "no projection"),
            ("SELECT ?x { ?x a ?y }", "missing WHERE"),
            ("SELECT ?x WHERE { }", "empty pattern"),
            ("SELECT ?x WHERE { ?x a foo:bar }", "unknown prefix"),
            ("FROB ?x WHERE { ?x a ?y }", "bad form"),
            ("SELECT ?x WHERE { ?x a ?y } garbage", "trailing"),
        ] {
            assert!(parse_query(src, &mut d).is_err(), "{why}");
        }
    }
}
