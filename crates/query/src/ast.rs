//! Query AST: SELECT/ASK over a basic graph pattern.
//!
//! Patterns reuse the datalog [`Atom`]/`TermPat` machinery (dense
//! rule-local variable indices); the query keeps the variable *names* so
//! results can be projected by name.

use owlpar_datalog::ast::Atom;

/// SELECT (rows) or ASK (boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryForm {
    /// Return bindings of the projected variables.
    Select,
    /// Return whether any solution exists.
    Ask,
}

/// A parsed, dictionary-encoded query.
#[derive(Debug, Clone)]
pub struct Query {
    /// SELECT or ASK.
    pub form: QueryForm,
    /// Variable names in first-occurrence order; `TermPat::Var(i)` in the
    /// patterns refers to `var_names[i]`.
    pub var_names: Vec<String>,
    /// Indices (into `var_names`) of the projected variables, in SELECT
    /// order. Empty for `SELECT *` means "all variables".
    pub projection: Vec<u16>,
    /// The basic graph pattern.
    pub patterns: Vec<Atom>,
    /// Deduplicate result rows.
    pub distinct: bool,
    /// Optional row cap.
    pub limit: Option<usize>,
}

impl Query {
    /// Indices actually projected (resolves the `SELECT *` convention).
    pub fn projected(&self) -> Vec<u16> {
        if self.projection.is_empty() {
            (0..self.var_names.len() as u16).collect()
        } else {
            self.projection.clone()
        }
    }

    /// Names of the projected variables, in order.
    pub fn projected_names(&self) -> Vec<&str> {
        self.projected()
            .into_iter()
            .map(|i| self.var_names[i as usize].as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_datalog::ast::build::{atom, v};

    fn q(projection: Vec<u16>) -> Query {
        Query {
            form: QueryForm::Select,
            var_names: vec!["x".into(), "y".into()],
            projection,
            patterns: vec![atom(v(0), v(1), v(0))],
            distinct: false,
            limit: None,
        }
    }

    #[test]
    fn star_projects_all() {
        assert_eq!(q(vec![]).projected(), vec![0, 1]);
        assert_eq!(q(vec![]).projected_names(), vec!["x", "y"]);
    }

    #[test]
    fn explicit_projection_keeps_order() {
        assert_eq!(q(vec![1, 0]).projected(), vec![1, 0]);
        assert_eq!(q(vec![1, 0]).projected_names(), vec!["y", "x"]);
    }
}
