//! The 14 LUBM benchmark queries, adapted to the `owlpar-datagen`
//! universe (same class/property vocabulary; the selective constants
//! reference university 0 / department 0 of the generated world).
//!
//! Several queries are *deliberately* empty on the raw data and only
//! answerable after OWL-Horst materialization — that dependency is the
//! benchmark's point, and `tests/` plus the `sparql_queries` example
//! assert it: Q5 (subproperty), Q6/Q10/Q14 (subclass), Q11
//! (transitivity), Q13 (inverse).

/// The `ub:` prefix declaration shared by all queries.
pub const PREFIX: &str =
    "PREFIX ub: <http://swat.lehigh.edu/onto/univ-bench.owl#>\n";

/// `(name, requires_inference, sparql)` for LUBM Q1–Q14.
pub fn queries() -> Vec<(&'static str, bool, String)> {
    let dept0 = "<http://www.univ0.edu/dept0>";
    let univ0 = "<http://www.univ0.edu/university>";
    let course = "<http://www.univ0.edu/dept0/course0_0>";
    let prof = "<http://www.univ0.edu/dept0/fullprof0>";

    let q = |body: String| format!("{PREFIX}{body}");
    vec![
        (
            "Q1",
            false,
            q(format!(
                "SELECT ?x WHERE {{ ?x a ub:GraduateStudent . ?x ub:takesCourse {course} . }}"
            )),
        ),
        (
            "Q2",
            // in our universe students' memberOf and the dept→university
            // subOrganizationOf edges are asserted, so Q2 is answerable raw
            false,
            q(format!(
                "SELECT ?x ?y WHERE {{ ?x a ub:GraduateStudent . ?x ub:memberOf ?y . \
                 ?y ub:subOrganizationOf {univ0} . ?x ub:undergraduateDegreeFrom {univ0} . }}"
            )),
        ),
        (
            "Q3",
            false,
            q(format!(
                "SELECT ?x WHERE {{ ?x a ub:Publication . ?x ub:publicationAuthor {prof} . }}"
            )),
        ),
        (
            "Q4",
            true, // Professor supertype via subclass inference
            q(format!(
                "SELECT DISTINCT ?x ?email WHERE {{ ?x a ub:Professor . \
                 ?x ub:worksFor {dept0} . ?x ub:emailAddress ?email . }}"
            )),
        ),
        (
            "Q5",
            true, // memberOf from worksFor/headOf subproperties
            q(format!(
                "SELECT DISTINCT ?x WHERE {{ ?x a ub:Person . ?x ub:memberOf {dept0} . }}"
            )),
        ),
        (
            "Q6",
            true, // Student supertype
            q("SELECT ?x WHERE { ?x a ub:Student . }".to_string()),
        ),
        (
            "Q7",
            false,
            q(format!(
                "SELECT DISTINCT ?x ?y WHERE {{ ?x ub:takesCourse ?y . \
                 {prof} ub:teacherOf ?y . }}"
            )),
        ),
        (
            "Q8",
            true, // memberOf + Student supertypes
            q(format!(
                "SELECT DISTINCT ?x ?y WHERE {{ ?x a ub:Student . ?x ub:memberOf ?y . \
                 ?y ub:subOrganizationOf {univ0} . }}"
            )),
        ),
        (
            "Q9",
            false,
            q("SELECT DISTINCT ?x ?y ?z WHERE { ?x ub:advisor ?y . \
               ?y ub:teacherOf ?z . ?x ub:takesCourse ?z . }"
                .to_string()),
        ),
        (
            "Q10",
            true, // Student supertype
            q(format!(
                "SELECT ?x WHERE {{ ?x a ub:Student . ?x ub:takesCourse {course} . }}"
            )),
        ),
        (
            "Q11",
            true, // subOrganizationOf transitivity (groups → university)
            q(format!(
                "SELECT ?x WHERE {{ ?x a ub:ResearchGroup . \
                 ?x ub:subOrganizationOf {univ0} . }}"
            )),
        ),
        (
            "Q12",
            true, // memberOf derived from headOf via two subPropertyOf hops
            q(format!(
                "SELECT DISTINCT ?x ?y WHERE {{ ?x ub:headOf ?y . ?x ub:memberOf ?y . \
                 ?y ub:subOrganizationOf {univ0} . }}"
            )),
        ),
        (
            "Q13",
            true, // hasAlumnus = inverseOf(degreeFrom)
            q(format!(
                "SELECT ?x WHERE {{ {univ0} ub:hasAlumnus ?x . }}"
            )),
        ),
        (
            "Q14",
            false,
            q("SELECT ?x WHERE { ?x a ub:UndergraduateStudent . }".to_string()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::exec::execute;
    use crate::parser::parse_query;
    use owlpar_datagen::{generate_lubm, LubmConfig};
    use owlpar_datalog::MaterializationStrategy;
    use owlpar_horst::HorstReasoner;
    use owlpar_rdf::Graph;

    fn worlds() -> (Graph, Graph) {
        let raw = generate_lubm(&LubmConfig {
            universities: 2,
            scale: 0.1,
            seed: 42,
        });
        let mut closed = raw.clone();
        let hr =
            HorstReasoner::from_graph(&mut closed, MaterializationStrategy::ForwardSemiNaive);
        hr.materialize(&mut closed);
        (raw, closed)
    }

    #[test]
    fn all_queries_parse() {
        let mut d = owlpar_rdf::Dictionary::new();
        for (name, _, src) in queries() {
            parse_query(&src, &mut d).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn queries_answerable_after_materialization() {
        let (_, mut closed) = worlds();
        for (name, _, src) in queries() {
            let q = parse_query(&src, &mut closed.dict).unwrap();
            let rows = execute(&closed.store, &q);
            assert!(!rows.is_empty(), "{name} empty on materialized KB");
        }
    }

    #[test]
    fn inference_dependent_queries_need_materialization() {
        let (mut raw, mut closed) = worlds();
        for (name, needs_inference, src) in queries() {
            let q_raw = parse_query(&src, &mut raw.dict).unwrap();
            let raw_rows = execute(&raw.store, &q_raw).len();
            let q_closed = parse_query(&src, &mut closed.dict).unwrap();
            let closed_rows = execute(&closed.store, &q_closed).len();
            if needs_inference {
                assert!(
                    closed_rows > raw_rows,
                    "{name}: materialization must add answers ({raw_rows} -> {closed_rows})"
                );
            } else {
                assert_eq!(
                    closed_rows, raw_rows,
                    "{name}: should not depend on inference"
                );
            }
        }
    }
}
