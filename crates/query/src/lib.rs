//! A SPARQL-lite query engine over materialized knowledge bases.
//!
//! Materialized KBs exist to make queries cheap: "materialized
//! knowledge-bases trade off space and increased loading time for shorter
//! query times" (§I). This crate supplies the query side of that
//! trade-off so the repository is a usable system, not just a closure
//! computer:
//!
//! * [`ast`] — queries as SELECT/ASK over basic graph patterns;
//! * [`parser`] — a SPARQL-lite surface syntax (`PREFIX`, `SELECT`,
//!   `ASK`, `WHERE`, `DISTINCT`, `LIMIT`);
//! * [`exec`] — index-driven BGP evaluation (greedy most-bound-first
//!   join ordering, the same discipline as the datalog engine);
//! * [`lubm`] — the 14 LUBM benchmark queries, adapted to the
//!   `owlpar-datagen` universe.
//!
//! ```
//! use owlpar_rdf::Graph;
//! use owlpar_query::{execute, parse_query};
//!
//! let mut g = Graph::new();
//! g.insert_iris("http://x/alice", "http://x/knows", "http://x/bob");
//! let q = parse_query(
//!     "SELECT ?who WHERE { <http://x/alice> <http://x/knows> ?who . }",
//!     &mut g.dict,
//! ).unwrap();
//! let rows = execute(&g.store, &q);
//! assert_eq!(rows.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod exec;
pub mod lubm;
pub mod parser;

pub use ast::{Query, QueryForm};
pub use exec::{ask, execute, render_row, Row};
pub use parser::{parse_query, parse_query_frozen, QueryParseError};
