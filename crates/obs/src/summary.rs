//! `owlpar trace summary` — per-phase / per-worker tables over a
//! previously written Chrome trace file.
//!
//! Reads back the JSON the [`chrome`](crate::chrome) exporter wrote
//! (via the dependency-free [`json`](crate::json) reader), groups round
//! spans by worker lane, and reports:
//!
//! * per-phase totals and the **critical-path share** — the fraction of
//!   the per-round slowest-worker time spent in each phase (the paper's
//!   barrier model: a round costs what its laggard costs);
//! * per-round worker skew (max − min round wall time across workers)
//!   next to the plan analyzer's predictions when the trace embeds a
//!   `"plan"` object (cluster runs with `--trace-out`).

use crate::json::{parse, Value};
use crate::Phase;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Totals for one phase across the whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// The phase.
    pub phase: Phase,
    /// Number of spans.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: u64,
    /// Time this phase contributes to the critical path (per round, the
    /// slowest worker's spans), µs. Zero for phases outside rounds.
    pub crit_us: u64,
}

/// One exchange round, across workers.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStat {
    /// Round number.
    pub round: u32,
    /// Worker lanes that recorded a round span.
    pub workers: usize,
    /// Slowest worker's round wall time, µs.
    pub max_us: u64,
    /// Fastest worker's round wall time, µs.
    pub min_us: u64,
    /// Bytes the relay moved this round (sum of `exchange.bytes`
    /// counter samples tagged with the round), when recorded.
    pub bytes: Option<u64>,
}

impl RoundStat {
    /// max − min worker round time, µs.
    pub fn skew_us(&self) -> u64 {
        self.max_us.saturating_sub(self.min_us)
    }
}

/// Plan-analyzer predictions embedded in the trace (`"plan"` key).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanInfo {
    /// Strategy label.
    pub strategy: String,
    /// Predicted setup bytes.
    pub setup_bytes: Option<u64>,
    /// Predicted total round bytes.
    pub round_bytes: Option<f64>,
    /// Predicted round count (upper bound).
    pub predicted_rounds: Option<u64>,
    /// Predicted skew ratio: max worker load share × k (1.0 = perfectly
    /// even).
    pub skew_ratio: Option<f64>,
}

/// Everything the summary renderer needs.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Trace wall time (max span end − min span start), µs.
    pub wall_us: u64,
    /// Phases seen, in [`Phase`] order.
    pub phases: Vec<PhaseStat>,
    /// Rounds seen, ascending.
    pub rounds: Vec<RoundStat>,
    /// Worker lane labels that carried round spans.
    pub workers: Vec<String>,
    /// Embedded plan predictions, when present.
    pub plan: Option<PlanInfo>,
    /// Number of events read.
    pub events: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Lane {
    pid: u64,
    tid: u64,
}

/// Compute summary statistics over a parsed Chrome trace document.
pub fn summarize(doc: &Value) -> Result<TraceStats, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("no traceEvents array — not a trace file?")?;

    let mut thread_names: BTreeMap<Lane, String> = BTreeMap::new();
    let mut process_names: BTreeMap<u64, String> = BTreeMap::new();
    // (lane, phase, round, start, dur) spans; per-(round, lane) totals.
    let mut spans: Vec<(Lane, Phase, Option<u32>, u64, u64)> = Vec::new();
    let mut round_bytes: BTreeMap<u32, u64> = BTreeMap::new();
    let mut n_events = 0usize;

    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let lane = Lane { pid, tid };
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        match ph {
            "M" => {
                let arg = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                if name == "thread_name" {
                    thread_names.insert(lane, arg);
                } else if name == "process_name" {
                    process_names.insert(pid, arg);
                }
            }
            "X" => {
                n_events += 1;
                let Some(phase) = Phase::from_name(name) else {
                    continue;
                };
                let ts = e.get("ts").and_then(Value::as_u64).unwrap_or(0);
                let dur = e.get("dur").and_then(Value::as_u64).unwrap_or(0);
                let round = e
                    .get("args")
                    .and_then(|a| a.get("round"))
                    .and_then(Value::as_u64)
                    .and_then(|r| u32::try_from(r).ok());
                spans.push((lane, phase, round, ts, dur));
            }
            "C" => {
                n_events += 1;
                if name == "exchange.bytes" {
                    if let Some(args) = e.get("args") {
                        let round = args
                            .get("round")
                            .and_then(Value::as_u64)
                            .and_then(|r| u32::try_from(r).ok());
                        let value = args.get("bytes").and_then(Value::as_u64).unwrap_or(0);
                        if let Some(r) = round {
                            *round_bytes.entry(r).or_default() += value;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    if spans.is_empty() {
        return Err("trace contains no owlpar spans".to_string());
    }

    let min_start = spans.iter().map(|s| s.3).min().unwrap_or(0);
    let max_end = spans.iter().map(|s| s.3 + s.4).max().unwrap_or(0);

    // Per-(round, lane) round wall time, and the per-round laggard.
    let mut round_lanes: BTreeMap<u32, BTreeMap<Lane, u64>> = BTreeMap::new();
    for &(lane, phase, round, _, dur) in &spans {
        if phase == Phase::Round {
            if let Some(r) = round {
                *round_lanes.entry(r).or_default().entry(lane).or_default() += dur;
            }
        }
    }
    let laggard: BTreeMap<u32, Lane> = round_lanes
        .iter()
        .filter_map(|(&r, lanes)| {
            lanes
                .iter()
                .max_by_key(|(_, &d)| d)
                .map(|(&lane, _)| (r, lane))
        })
        .collect();

    let mut phase_slots: BTreeMap<Phase, PhaseStat> = BTreeMap::new();
    for &(lane, phase, round, _, dur) in &spans {
        let slot = phase_slots.entry(phase).or_insert(PhaseStat {
            phase,
            count: 0,
            total_us: 0,
            crit_us: 0,
        });
        slot.count += 1;
        slot.total_us = slot.total_us.saturating_add(dur);
        // On the critical path: a non-round-phase span, or a span run by
        // the round's slowest worker.
        let on_crit = match round {
            None => phase != Phase::Round,
            Some(r) => laggard.get(&r) == Some(&lane),
        };
        if on_crit && phase != Phase::Round {
            slot.crit_us = slot.crit_us.saturating_add(dur);
        }
    }

    let rounds: Vec<RoundStat> = round_lanes
        .iter()
        .map(|(&round, lanes)| RoundStat {
            round,
            workers: lanes.len(),
            max_us: lanes.values().copied().max().unwrap_or(0),
            min_us: lanes.values().copied().min().unwrap_or(0),
            bytes: round_bytes.get(&round).copied(),
        })
        .collect();

    let mut worker_lanes: Vec<Lane> = round_lanes
        .values()
        .flat_map(|lanes| lanes.keys().copied())
        .collect();
    worker_lanes.sort_unstable();
    worker_lanes.dedup();
    let workers = worker_lanes
        .iter()
        .map(|l| {
            thread_names
                .get(l)
                .cloned()
                .or_else(|| process_names.get(&l.pid).cloned())
                .unwrap_or_else(|| format!("pid {} tid {}", l.pid, l.tid))
        })
        .collect();

    let plan = doc.get("plan").map(|p| PlanInfo {
        strategy: p
            .get("strategy")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        setup_bytes: p.get("setup_bytes").and_then(Value::as_u64),
        round_bytes: p.get("round_bytes").and_then(Value::as_f64),
        predicted_rounds: p.get("predicted_rounds").and_then(Value::as_u64),
        skew_ratio: p.get("skew_ratio").and_then(Value::as_f64),
    });

    Ok(TraceStats {
        wall_us: max_end.saturating_sub(min_start),
        phases: phase_slots.into_values().collect(),
        rounds,
        workers,
        plan,
        events: n_events,
    })
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Render the summary as the human table `owlpar trace summary` prints.
pub fn render(stats: &TraceStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} event(s), {:.3} ms wall, {} worker lane(s), {} round(s)",
        stats.events,
        ms(stats.wall_us),
        stats.workers.len(),
        stats.rounds.len()
    );
    if !stats.workers.is_empty() {
        let _ = writeln!(out, "workers: {}", stats.workers.join(", "));
    }

    let crit_total: u64 = stats.phases.iter().map(|p| p.crit_us).sum();
    let _ = writeln!(
        out,
        "\n{:<14} {:>7} {:>12} {:>8} {:>10}",
        "phase", "spans", "total ms", "% wall", "% crit"
    );
    for p in &stats.phases {
        let wall_pct = if stats.wall_us == 0 {
            0.0
        } else {
            100.0 * p.total_us as f64 / stats.wall_us as f64
        };
        let crit_pct = if crit_total == 0 {
            0.0
        } else {
            100.0 * p.crit_us as f64 / crit_total as f64
        };
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>12.3} {:>7.1}% {:>9.1}%",
            p.phase.name(),
            p.count,
            ms(p.total_us),
            wall_pct,
            crit_pct
        );
    }

    if !stats.rounds.is_empty() {
        let predicted_per_round = stats.plan.as_ref().and_then(|p| {
            let total = p.round_bytes?;
            let rounds = p.predicted_rounds.unwrap_or(stats.rounds.len() as u64);
            Some(total / rounds.max(1) as f64)
        });
        let _ = writeln!(
            out,
            "\n{:<6} {:>7} {:>10} {:>10} {:>10} {:>8} {:>12} {:>14}",
            "round", "workers", "max ms", "min ms", "skew ms", "skew x", "bytes", "pred. bytes"
        );
        for r in &stats.rounds {
            let mean = if r.workers == 0 {
                0.0
            } else {
                (r.max_us + r.min_us) as f64 / 2.0
            };
            let skew_ratio = if mean == 0.0 {
                1.0
            } else {
                r.max_us as f64 / mean
            };
            let bytes = r
                .bytes
                .map_or("-".to_string(), |b| b.to_string());
            let pred = predicted_per_round
                .map_or("-".to_string(), |p| format!("{p:.0}"));
            let _ = writeln!(
                out,
                "{:<6} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>8.2} {:>12} {:>14}",
                r.round,
                r.workers,
                ms(r.max_us),
                ms(r.min_us),
                ms(r.skew_us()),
                skew_ratio,
                bytes,
                pred
            );
        }
    }

    if let Some(plan) = &stats.plan {
        let _ = write!(out, "\nplan ({})", plan.strategy);
        if let Some(s) = plan.setup_bytes {
            let _ = write!(out, ": predicted setup {s} B");
        }
        if let Some(r) = plan.round_bytes {
            let _ = write!(out, ", rounds {r:.0} B total");
        }
        if let Some(n) = plan.predicted_rounds {
            let _ = write!(out, ", ≤{n} round(s)");
        }
        if let Some(k) = plan.skew_ratio {
            let _ = write!(out, ", predicted skew ratio {k:.2}x");
        }
        out.push('\n');
        if let Some(pred) = plan.skew_ratio {
            let worst = stats
                .rounds
                .iter()
                .map(|r| {
                    let mean = (r.max_us + r.min_us) as f64 / 2.0;
                    if mean == 0.0 {
                        1.0
                    } else {
                        r.max_us as f64 / mean
                    }
                })
                .fold(1.0f64, f64::max);
            let _ = writeln!(
                out,
                "measured worst-round skew ratio {worst:.2}x vs predicted {pred:.2}x"
            );
        }
    }
    out
}

/// Convenience: parse a trace file's text and render its summary.
pub fn summarize_text(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let stats = summarize(&doc)?;
    Ok(render(&stats))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::chrome::to_chrome_json;
    use crate::{Metric, Phase, Recorder, NO_ROUND};

    fn two_worker_book() -> crate::TraceBook {
        let rec = Recorder::enabled();
        let mut m = rec.track("master");
        m.span_at(Phase::Setup, NO_ROUND, 0, 500);
        m.count(Phase::Exchange, 0, Metric::Bytes, 1000);
        m.flush();
        drop(m);
        for (w, (dur0, dur1)) in [(0u32, (900u64, 400u64)), (1, (700, 600))] {
            let mut t = rec.track_in(&format!("worker {w}"), w + 1);
            t.span_at(Phase::Round, 0, 600, dur0);
            t.span_at(Phase::Join, 0, 600, dur0 / 2);
            t.span_at(Phase::Round, 1, 1600, dur1);
            t.flush();
        }
        let mut book = rec.drain();
        book.extra_json.push((
            "plan".to_string(),
            "{\"strategy\":\"data\",\"setup_bytes\":123,\"round_bytes\":2000.0,\
             \"predicted_rounds\":2,\"skew_ratio\":1.2}"
                .to_string(),
        ));
        book
    }

    #[test]
    fn summarizes_rounds_and_skew() {
        let json = to_chrome_json(&two_worker_book());
        let stats = summarize(&parse(&json).unwrap()).unwrap();
        assert_eq!(stats.rounds.len(), 2);
        let r0 = &stats.rounds[0];
        assert_eq!((r0.round, r0.workers), (0, 2));
        assert_eq!(r0.max_us, 900);
        assert_eq!(r0.min_us, 700);
        assert_eq!(r0.skew_us(), 200);
        assert_eq!(r0.bytes, Some(1000));
        assert_eq!(stats.rounds[1].bytes, None);
        assert_eq!(stats.workers, vec!["worker 0", "worker 1"]);
        let plan = stats.plan.as_ref().unwrap();
        assert_eq!(plan.setup_bytes, Some(123));
        assert_eq!(plan.skew_ratio, Some(1.2));
        // Join on the critical path: round 0's laggard is worker 0.
        let join = stats
            .phases
            .iter()
            .find(|p| p.phase == Phase::Join)
            .unwrap();
        assert_eq!(join.crit_us, 450);

        let table = render(&stats);
        assert!(table.contains("barrier") || table.contains("round"), "{table}");
        assert!(table.contains("predicted skew ratio 1.20x"), "{table}");
        assert!(table.contains("skew"), "{table}");
    }

    #[test]
    fn non_trace_json_is_a_typed_error() {
        assert!(summarize(&parse("{\"x\":1}").unwrap()).is_err());
        let doc = parse("{\"traceEvents\":[]}").unwrap();
        assert!(summarize(&doc).is_err());
    }
}
