//! A minimal JSON reader for `owlpar trace summary`.
//!
//! The obs crate is dependency-free by design (it sits underneath every
//! other crate, including the engines), so reading back a trace file
//! cannot lean on serde. This is a small, strict-enough recursive
//! parser for the documents this workspace itself writes: objects,
//! arrays, strings with the standard escapes, numbers (kept as f64 and,
//! when integral, u64), booleans and null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; `Num(f64, Option<u64>)` keeps the exact integer when
    /// the literal was a non-negative integer in range.
    Num(f64, Option<u64>),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as u64, when integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(f, exact) => exact.or_else(|| {
                (*f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64).then_some(*f as u64)
            }),
            _ => None,
        }
    }

    /// The value as f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(f, _) => Some(*f),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos, depth + 1)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates render as the replacement char — the
                        // traces this reads never emit astral escapes.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str,
                // so boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                if let Ok(s) = std::str::from_utf8(&b[start..*pos]) {
                    out.push_str(s);
                }
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let f: f64 = text
        .parse()
        .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
    let exact = text.parse::<u64>().ok();
    Ok(Value::Num(f, exact))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(
            "{\"a\": 1, \"b\": [true, null, -2.5e1], \"s\": \"x\\n\\\"y\\\"\", \"big\": 18446744073709551615}",
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let arr = v.get("b").and_then(|b| b.as_array()).unwrap();
        assert_eq!(arr[0], Value::Bool(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_f64(), Some(-25.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("big").and_then(Value::as_u64), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12..5").is_err());
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        let v = parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("café é"));
    }
}
