//! Prometheus text exposition rendering of phase metrics.
//!
//! The serve STATS response embeds this dump so one scrape shows where
//! server time goes (query/insert/checkpoint/wal-fsync spans) next to
//! the request counters.

use crate::Phase;
use std::fmt::Write as _;

/// One extra sample: `(metric name, label key, label value, sample)`.
pub type Sample<'a> = (&'a str, &'a str, &'a str, f64);

/// Render per-phase span totals (`(phase, total_dur_us, span_count)` as
/// returned by [`Recorder::phase_totals`](crate::Recorder::phase_totals))
/// plus optional extra samples in the Prometheus text format.
pub fn render(totals: &[(Phase, u64, u64)], extra: &[Sample<'_>]) -> String {
    let mut out = String::new();
    if !totals.is_empty() {
        out.push_str("# TYPE owlpar_phase_seconds_total counter\n");
        for (phase, dur_us, _) in totals {
            let _ = writeln!(
                out,
                "owlpar_phase_seconds_total{{phase=\"{}\"}} {:.6}",
                phase.name(),
                *dur_us as f64 / 1e6
            );
        }
        out.push_str("# TYPE owlpar_phase_spans_total counter\n");
        for (phase, _, count) in totals {
            let _ = writeln!(
                out,
                "owlpar_phase_spans_total{{phase=\"{}\"}} {count}",
                phase.name()
            );
        }
    }
    let mut last_name = "";
    for (name, key, label, value) in extra {
        if *name != last_name {
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_name = name;
        }
        if key.is_empty() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name}{{{key}=\"{label}\"}} {value}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn renders_phase_totals_and_extras() {
        let text = render(
            &[(Phase::Join, 1_500_000, 3), (Phase::WalFsync, 250, 1)],
            &[
                ("owlpar_server_queries", "", "", 42.0),
                ("owlpar_server_latency_us", "quantile", "p50", 128.0),
            ],
        );
        assert!(text.contains("owlpar_phase_seconds_total{phase=\"join\"} 1.500000"));
        assert!(text.contains("owlpar_phase_seconds_total{phase=\"wal-fsync\"} 0.000250"));
        assert!(text.contains("owlpar_phase_spans_total{phase=\"join\"} 3"));
        assert!(text.contains("owlpar_server_queries 42"));
        assert!(text.contains("owlpar_server_latency_us{quantile=\"p50\"} 128"));
        assert!(text.contains("# TYPE owlpar_phase_seconds_total counter"));
    }

    #[test]
    fn empty_inputs_render_empty() {
        assert_eq!(render(&[], &[]), "");
    }
}
