//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON object format (`{"traceEvents":[...]}`) loadable by
//! `chrome://tracing` / Perfetto: complete (`"ph":"X"`) events for
//! spans, counter (`"ph":"C"`) events for samples, and metadata events
//! naming each process and thread lane. Extra top-level keys (the plan
//! predictions, run metadata) ride along — the Chrome viewer ignores
//! keys it does not know, and `owlpar trace summary` reads them back.

use crate::{Event, TraceBook, NO_ROUND};
use std::fmt::Write as _;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a drained [`TraceBook`] as a Chrome trace JSON document.
pub fn to_chrome_json(book: &TraceBook) -> String {
    let mut out = String::with_capacity(book.events.len() * 96 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&ev);
    };

    // Metadata: name each process and thread lane.
    let mut pids: Vec<u32> = book.tracks.iter().map(|t| t.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        let pname = if pid == 0 { "master" } else { "worker" };
        let name = if pid == 0 {
            pname.to_string()
        } else {
            format!("{pname} {}", pid - 1)
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&name)
            ),
        );
    }
    for t in &book.tracks {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.pid,
                t.id,
                escape(&t.name)
            ),
        );
    }

    let pid_of = |track: u32| {
        book.tracks
            .iter()
            .find(|t| t.id == track)
            .map_or(0, |t| t.pid)
    };
    for e in &book.events {
        match *e {
            Event::Span {
                track,
                phase,
                round,
                start_us,
                dur_us,
            } => {
                let args = if round == NO_ROUND {
                    String::new()
                } else {
                    format!(",\"args\":{{\"round\":{round}}}")
                };
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"owlpar\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{track},\"ts\":{start_us},\"dur\":{dur_us}{args}}}",
                        phase.name(),
                        pid_of(track),
                    ),
                );
            }
            Event::Count {
                track,
                phase,
                round,
                at_us,
                metric,
                value,
            } => {
                let round_arg = if round == NO_ROUND {
                    String::new()
                } else {
                    format!(",\"round\":{round}")
                };
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}.{}\",\"cat\":\"owlpar\",\"ph\":\"C\",\
                         \"pid\":{},\"tid\":{track},\"ts\":{at_us},\
                         \"args\":{{\"{}\":{value}{round_arg}}}}}",
                        phase.name(),
                        metric.name(),
                        pid_of(track),
                        metric.name(),
                    ),
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"");
    for (key, raw) in &book.extra_json {
        let _ = write!(out, ",\"{}\":{raw}", escape(key));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::{Metric, Phase, Recorder};

    #[test]
    fn export_contains_spans_counters_and_lane_names() {
        let rec = Recorder::enabled();
        let mut t = rec.track("worker 0");
        t.span_at(Phase::Join, 2, 100, 50);
        t.count(Phase::Exchange, 2, Metric::Bytes, 777);
        t.flush();
        let mut book = rec.drain();
        book.extra_json
            .push(("plan".to_string(), "{\"k\":4}".to_string()));
        let json = to_chrome_json(&book);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"join\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":50"));
        assert!(json.contains("\"args\":{\"round\":2}"));
        assert!(json.contains("\"name\":\"exchange.bytes\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("worker 0"));
        assert!(json.contains("\"plan\":{\"k\":4}"));
        // The mini parser must accept its own exporter's output.
        let v = crate::json::parse(&json).unwrap();
        assert!(v.get("traceEvents").and_then(|e| e.as_array()).is_some());
    }
}
