//! Compact varint codec for shipped trace buffers.
//!
//! A cluster worker drains its [`Track`](crate::Track) buffer every
//! round and ships it to the master inside a `TraceChunk` protocol
//! message. The payload grammar (all integers LEB128 varints, the same
//! encoding as the v2 triple-block codec):
//!
//! ```text
//! chunk   := clock_us:varint  count:varint  event*
//! event   := 0x00 span  | 0x01 count
//! span    := track phase round+1 start_us dur_us        (varints)
//! count   := track phase round+1 at_us metric value     (varints)
//! ```
//!
//! `round+1` maps [`NO_ROUND`](crate::NO_ROUND) to 0 so the sentinel
//! stays a one-byte varint. `clock_us` is the worker's monotonic clock
//! at encode time: the master estimates the worker's clock offset as
//! `min over chunks (master_receipt_us − clock_us)` — the minimum sees
//! the chunk with the smallest transit + queueing delay, so the merged
//! timeline error is bounded by the best observed one-way latency.

use crate::{Event, Metric, NO_ROUND, Phase};

/// A decoded `TraceChunk` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChunk {
    /// Sender's monotonic clock (µs since its recorder origin) at
    /// encode time.
    pub clock_us: u64,
    /// The shipped events, in flush order.
    pub events: Vec<Event>,
}

/// Why a trace chunk failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceWireError {
    /// Varint ran past the end of the buffer or exceeded 64 bits.
    BadVarint,
    /// Unknown event tag byte.
    BadTag(u8),
    /// Unknown phase discriminant.
    BadPhase(u64),
    /// Unknown metric discriminant.
    BadMetric(u64),
    /// Field does not fit its declared width.
    Overflow,
    /// Bytes left over after the declared event count.
    TrailingBytes(usize),
}

impl std::fmt::Display for TraceWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceWireError::BadVarint => write!(f, "truncated or oversized varint"),
            TraceWireError::BadTag(t) => write!(f, "unknown trace event tag {t}"),
            TraceWireError::BadPhase(p) => write!(f, "unknown phase discriminant {p}"),
            TraceWireError::BadMetric(m) => write!(f, "unknown metric discriminant {m}"),
            TraceWireError::Overflow => write!(f, "field exceeds its width"),
            TraceWireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after events"),
        }
    }
}

impl std::error::Error for TraceWireError {}

/// Append a LEB128 varint.
pub fn put_varint64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub fn get_varint64(buf: &[u8], pos: &mut usize) -> Result<u64, TraceWireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(TraceWireError::BadVarint)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceWireError::BadVarint);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_round(out: &mut Vec<u8>, round: u32) {
    // NO_ROUND → 0, round r → r+1: the sentinel costs one byte.
    put_varint64(out, if round == NO_ROUND { 0 } else { u64::from(round) + 1 });
}

fn get_round(buf: &[u8], pos: &mut usize) -> Result<u32, TraceWireError> {
    let v = get_varint64(buf, pos)?;
    if v == 0 {
        return Ok(NO_ROUND);
    }
    u32::try_from(v - 1).map_err(|_| TraceWireError::Overflow)
}

/// Encode a chunk: the sender's clock plus its drained event buffer.
pub fn encode_trace_chunk(clock_us: u64, events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + events.len() * 12);
    put_varint64(&mut out, clock_us);
    put_varint64(&mut out, events.len() as u64);
    for e in events {
        match *e {
            Event::Span {
                track,
                phase,
                round,
                start_us,
                dur_us,
            } => {
                out.push(0);
                put_varint64(&mut out, u64::from(track));
                put_varint64(&mut out, u64::from(phase as u8));
                put_round(&mut out, round);
                put_varint64(&mut out, start_us);
                put_varint64(&mut out, dur_us);
            }
            Event::Count {
                track,
                phase,
                round,
                at_us,
                metric,
                value,
            } => {
                out.push(1);
                put_varint64(&mut out, u64::from(track));
                put_varint64(&mut out, u64::from(phase as u8));
                put_round(&mut out, round);
                put_varint64(&mut out, at_us);
                put_varint64(&mut out, u64::from(metric as u8));
                put_varint64(&mut out, value);
            }
        }
    }
    out
}

/// Decode a chunk produced by [`encode_trace_chunk`].
pub fn decode_trace_chunk(buf: &[u8]) -> Result<TraceChunk, TraceWireError> {
    let mut pos = 0usize;
    let clock_us = get_varint64(buf, &mut pos)?;
    let count = get_varint64(buf, &mut pos)?;
    let count = usize::try_from(count).map_err(|_| TraceWireError::Overflow)?;
    // 6 bytes is the smallest possible event; a wild count fails fast.
    if count > buf.len() {
        return Err(TraceWireError::Overflow);
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let &tag = buf.get(pos).ok_or(TraceWireError::BadVarint)?;
        pos += 1;
        if tag > 1 {
            return Err(TraceWireError::BadTag(tag));
        }
        let track = u32::try_from(get_varint64(buf, &mut pos)?)
            .map_err(|_| TraceWireError::Overflow)?;
        let phase_raw = get_varint64(buf, &mut pos)?;
        let phase = u8::try_from(phase_raw)
            .ok()
            .and_then(Phase::from_u8)
            .ok_or(TraceWireError::BadPhase(phase_raw))?;
        let round = get_round(buf, &mut pos)?;
        match tag {
            0 => {
                let start_us = get_varint64(buf, &mut pos)?;
                let dur_us = get_varint64(buf, &mut pos)?;
                events.push(Event::Span {
                    track,
                    phase,
                    round,
                    start_us,
                    dur_us,
                });
            }
            1 => {
                let at_us = get_varint64(buf, &mut pos)?;
                let metric_raw = get_varint64(buf, &mut pos)?;
                let metric = u8::try_from(metric_raw)
                    .ok()
                    .and_then(Metric::from_u8)
                    .ok_or(TraceWireError::BadMetric(metric_raw))?;
                let value = get_varint64(buf, &mut pos)?;
                events.push(Event::Count {
                    track,
                    phase,
                    round,
                    at_us,
                    metric,
                    value,
                });
            }
            other => return Err(TraceWireError::BadTag(other)),
        }
    }
    if pos != buf.len() {
        return Err(TraceWireError::TrailingBytes(buf.len() - pos));
    }
    Ok(TraceChunk { clock_us, events })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Span {
                track: 0,
                phase: Phase::Round,
                round: 0,
                start_us: 10,
                dur_us: 1_000,
            },
            Event::Span {
                track: 0,
                phase: Phase::BarrierWait,
                round: 2,
                start_us: u64::from(u32::MAX) + 17,
                dur_us: 3,
            },
            Event::Span {
                track: 1,
                phase: Phase::Setup,
                round: NO_ROUND,
                start_us: 0,
                dur_us: 0,
            },
            Event::Count {
                track: 1,
                phase: Phase::Exchange,
                round: 1,
                at_us: 55,
                metric: Metric::Bytes,
                value: 123_456_789,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let events = sample_events();
        let buf = encode_trace_chunk(987_654_321, &events);
        let chunk = decode_trace_chunk(&buf).unwrap();
        assert_eq!(chunk.clock_us, 987_654_321);
        assert_eq!(chunk.events, events);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let buf = encode_trace_chunk(5, &[]);
        let chunk = decode_trace_chunk(&buf).unwrap();
        assert_eq!(chunk.clock_us, 5);
        assert!(chunk.events.is_empty());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_trace_chunk(1, &sample_events());
        buf.push(0xaa);
        assert_eq!(
            decode_trace_chunk(&buf),
            Err(TraceWireError::TrailingBytes(1))
        );
    }

    #[test]
    fn truncation_rejected() {
        let buf = encode_trace_chunk(1, &sample_events());
        for cut in 1..buf.len() {
            assert!(
                decode_trace_chunk(&buf[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_tag_and_phase_rejected() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 0); // clock
        put_varint64(&mut buf, 1); // one event
        buf.push(9); // bogus tag
        assert_eq!(decode_trace_chunk(&buf), Err(TraceWireError::BadTag(9)));

        let mut buf = Vec::new();
        put_varint64(&mut buf, 0);
        put_varint64(&mut buf, 1);
        buf.push(0); // span
        put_varint64(&mut buf, 0); // track
        put_varint64(&mut buf, 99); // bogus phase
        put_varint64(&mut buf, 1); // round
        put_varint64(&mut buf, 0); // start
        put_varint64(&mut buf, 0); // dur
        assert_eq!(decode_trace_chunk(&buf), Err(TraceWireError::BadPhase(99)));
    }

    #[test]
    fn varint_refuses_65_bit_values() {
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert_eq!(
            get_varint64(&buf, &mut pos),
            Err(TraceWireError::BadVarint)
        );
        let mut ok = Vec::new();
        put_varint64(&mut ok, u64::MAX);
        let mut pos = 0;
        assert_eq!(get_varint64(&ok, &mut pos), Ok(u64::MAX));
    }
}
