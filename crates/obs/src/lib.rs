//! `owlpar-obs` — zero-dependency, low-overhead tracing + phase metrics.
//!
//! The paper's speedup argument hinges on *where* round time goes — join
//! work vs. exchange vs. barrier wait — so every layer of the runtime
//! records phase-tagged spans into a [`Recorder`]:
//!
//! * a **disabled recorder is one branch**: every operation on a
//!   [`Track`] whose recorder is off checks a single `Option` and
//!   returns — the serial/parallel engines can stay instrumented
//!   unconditionally without measurable cost;
//! * an **enabled recorder never locks on the hot path**: each thread
//!   (engine shard, run_parallel worker, serve request) owns a [`Track`]
//!   with a private event buffer; the shared event log is locked exactly
//!   once, when the track flushes (drop or [`Track::flush`]);
//! * timestamps come from one **monotonic origin** per recorder
//!   ([`Recorder::now_us`]); cluster workers ship their buffers to the
//!   master as compact varint [`wire`] frames and the master re-bases
//!   them onto its own clock (see [`Recorder::absorb`]), producing one
//!   merged timeline.
//!
//! Exporters: Chrome `trace_event` JSON ([`chrome`]), a Prometheus-style
//! text dump ([`prom`]), and a per-phase/per-worker summary table over a
//! previously written trace file ([`summary`]).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod chrome;
pub mod json;
pub mod prom;
pub mod summary;
pub mod wire;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Sentinel round for spans outside any exchange round (parse, setup…).
pub const NO_ROUND: u32 = u32::MAX;

/// Stable phase identifiers. The discriminants are the **wire encoding**
/// ([`wire`]) — append new phases at the end, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// N-Triples / rule-file parsing.
    Parse = 0,
    /// Ontology → rule-base compilation (TBox extraction included).
    Compile = 1,
    /// Freezing / merging the immutable base store (LSM merge).
    Freeze = 2,
    /// Building the partition plan and per-worker bases.
    Partition = 3,
    /// Shipping partitions / handshake (cluster setup).
    Setup = 4,
    /// One whole exchange round (encloses join/exchange/barrier-wait).
    Round = 5,
    /// Rule joins against the base (reasoning proper).
    Join = 6,
    /// Sort + dedup + novelty filtering of candidates.
    Dedup = 7,
    /// Routing + sending derivations to their owners.
    Exchange = 8,
    /// Waiting at a round barrier for the laggard.
    BarrierWait = 9,
    /// Receiving the round's routed triples.
    Collect = 10,
    /// Writing an atomic checkpoint.
    Checkpoint = 11,
    /// WAL append + fsync.
    WalFsync = 12,
    /// Master-side final aggregation of worker stores.
    Aggregate = 13,
    /// Serve read path: parse + execute + render one query.
    Query = 14,
    /// Serve write path: delta closure + publish for one insert batch.
    Insert = 15,
    /// Master-side recovery after a worker loss.
    Recovery = 16,
}

/// Every phase, in discriminant order.
pub const ALL_PHASES: [Phase; 17] = [
    Phase::Parse,
    Phase::Compile,
    Phase::Freeze,
    Phase::Partition,
    Phase::Setup,
    Phase::Round,
    Phase::Join,
    Phase::Dedup,
    Phase::Exchange,
    Phase::BarrierWait,
    Phase::Collect,
    Phase::Checkpoint,
    Phase::WalFsync,
    Phase::Aggregate,
    Phase::Query,
    Phase::Insert,
    Phase::Recovery,
];

impl Phase {
    /// Stable human name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Compile => "compile",
            Phase::Freeze => "freeze",
            Phase::Partition => "partition",
            Phase::Setup => "setup",
            Phase::Round => "round",
            Phase::Join => "join",
            Phase::Dedup => "dedup",
            Phase::Exchange => "exchange",
            Phase::BarrierWait => "barrier-wait",
            Phase::Collect => "collect",
            Phase::Checkpoint => "checkpoint",
            Phase::WalFsync => "wal-fsync",
            Phase::Aggregate => "aggregate",
            Phase::Query => "query",
            Phase::Insert => "insert",
            Phase::Recovery => "recovery",
        }
    }

    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Phase> {
        ALL_PHASES.get(v as usize).copied()
    }

    /// Resolve a stable name (as written in a trace file).
    pub fn from_name(name: &str) -> Option<Phase> {
        ALL_PHASES.into_iter().find(|p| p.name() == name)
    }
}

/// What a counter sample measures. Discriminants are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Metric {
    /// Bytes moved (wire frames, checkpoint size…).
    Bytes = 0,
    /// Triples moved or held.
    Triples = 1,
    /// Triples derived.
    Derived = 2,
    /// Messages sent.
    Sent = 3,
    /// Messages received.
    Received = 4,
    /// Messages skipped-with-report.
    Skipped = 5,
}

impl Metric {
    /// Stable human name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Bytes => "bytes",
            Metric::Triples => "triples",
            Metric::Derived => "derived",
            Metric::Sent => "sent",
            Metric::Received => "received",
            Metric::Skipped => "skipped",
        }
    }

    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Metric> {
        [
            Metric::Bytes,
            Metric::Triples,
            Metric::Derived,
            Metric::Sent,
            Metric::Received,
            Metric::Skipped,
        ]
        .get(v as usize)
        .copied()
    }
}

/// One recorded observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A closed span: `[start_us, start_us + dur_us)` on `track`.
    Span {
        /// Track (≈ thread / worker) the span ran on.
        track: u32,
        /// Phase label.
        phase: Phase,
        /// Exchange round, or [`NO_ROUND`].
        round: u32,
        /// Start, µs since the recorder origin.
        start_us: u64,
        /// Duration in µs.
        dur_us: u64,
    },
    /// A counter sample (monotonic within a phase/round is up to the
    /// producer; exporters just plot the value).
    Count {
        /// Track the sample belongs to.
        track: u32,
        /// Phase the sample is attributed to.
        phase: Phase,
        /// Exchange round, or [`NO_ROUND`].
        round: u32,
        /// Sample time, µs since the recorder origin.
        at_us: u64,
        /// What the value measures.
        metric: Metric,
        /// The value.
        value: u64,
    },
}

impl Event {
    /// The track the event belongs to.
    pub fn track(&self) -> u32 {
        match *self {
            Event::Span { track, .. } | Event::Count { track, .. } => track,
        }
    }

    /// The event's phase.
    pub fn phase(&self) -> Phase {
        match *self {
            Event::Span { phase, .. } | Event::Count { phase, .. } => phase,
        }
    }

    /// The event's round ([`NO_ROUND`] when outside rounds).
    pub fn round(&self) -> u32 {
        match *self {
            Event::Span { round, .. } | Event::Count { round, .. } => round,
        }
    }

    /// Shift the event's timestamp by a signed µs offset (saturating).
    fn shifted(mut self, offset_us: i64) -> Event {
        let shift = |t: u64| t.saturating_add_signed(offset_us);
        match &mut self {
            Event::Span { start_us, .. } => *start_us = shift(*start_us),
            Event::Count { at_us, .. } => *at_us = shift(*at_us),
        }
        self
    }

    /// Replace the event's track id.
    fn retracked(mut self, new: u32) -> Event {
        match &mut self {
            Event::Span { track, .. } | Event::Count { track, .. } => *track = new,
        }
        self
    }
}

/// A named event track (≈ one thread or one cluster worker) and the
/// Chrome process it renders under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackMeta {
    /// Track id referenced by [`Event::track`].
    pub id: u32,
    /// Chrome `pid` (0 = the local process / master; cluster workers get
    /// `node_id + 1` so their lanes group per process).
    pub pid: u32,
    /// Human lane name ("master", "worker 3", "shard 1"…).
    pub name: String,
}

/// A drained recorder: everything an exporter needs.
#[derive(Debug, Clone, Default)]
pub struct TraceBook {
    /// All events, in flush order.
    pub events: Vec<Event>,
    /// Track registry.
    pub tracks: Vec<TrackMeta>,
    /// Extra top-level JSON fields for the Chrome export — each entry is
    /// `(key, raw-JSON value)`. Used to embed the plan predictions.
    pub extra_json: Vec<(String, String)>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    events: Mutex<Vec<Event>>,
    tracks: Mutex<Vec<TrackMeta>>,
    next_track: AtomicU32,
    extra: Mutex<Vec<(String, String)>>,
}

/// The tracing handle. Cloning shares the underlying log; the default
/// recorder is **disabled** and every operation on it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that records.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                events: Mutex::new(Vec::new()),
                tracks: Mutex::new(Vec::new()),
                next_track: AtomicU32::new(0),
                extra: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op recorder (same as `Recorder::default()`).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Does this recorder record?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this recorder's monotonic origin (0 when
    /// disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(i) => u64::try_from(i.origin.elapsed().as_micros()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Open a named track under Chrome pid 0 (the local process).
    pub fn track(&self, name: &str) -> Track {
        self.track_in(name, 0)
    }

    /// Open a named track under an explicit Chrome pid.
    pub fn track_in(&self, name: &str, pid: u32) -> Track {
        let id = match &self.inner {
            Some(i) => {
                let id = i.next_track.fetch_add(1, Ordering::Relaxed);
                if let Ok(mut t) = i.tracks.lock() {
                    t.push(TrackMeta {
                        id,
                        pid,
                        name: name.to_string(),
                    });
                }
                id
            }
            None => 0,
        };
        Track {
            rec: self.clone(),
            id,
            buf: Vec::new(),
        }
    }

    /// Append pre-recorded foreign events (a cluster worker's shipped
    /// buffer): timestamps are shifted by `offset_us` onto this
    /// recorder's clock and tracks are re-registered under `pid` with
    /// names `"<label> <original track>"` (or just `label` when the
    /// foreign buffer used a single track). Returns the number of events
    /// absorbed. No-op (returns 0) when disabled.
    pub fn absorb(&self, events: &[Event], label: &str, pid: u32, offset_us: i64) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        // Map foreign track ids to fresh local ids.
        let mut foreign: Vec<u32> = events.iter().map(Event::track).collect();
        foreign.sort_unstable();
        foreign.dedup();
        let single = foreign.len() <= 1;
        let mut map: Vec<(u32, u32)> = Vec::with_capacity(foreign.len());
        for &f in &foreign {
            let name = if single {
                label.to_string()
            } else {
                format!("{label} t{f}")
            };
            let id = inner.next_track.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut t) = inner.tracks.lock() {
                t.push(TrackMeta { id, pid, name });
            }
            map.push((f, id));
        }
        let remap = |t: u32| {
            map.iter()
                .find(|(f, _)| *f == t)
                .map(|&(_, l)| l)
                .unwrap_or(t)
        };
        let shifted: Vec<Event> = events
            .iter()
            .map(|e| e.shifted(offset_us).retracked(remap(e.track())))
            .collect();
        let n = shifted.len();
        if let Ok(mut log) = inner.events.lock() {
            log.extend(shifted);
        }
        n
    }

    /// Attach (or replace) an extra top-level JSON field every future
    /// [`Recorder::drain`] carries into its [`TraceBook::extra_json`] —
    /// how the cluster master embeds the plan analyzer's predictions
    /// next to the measured timeline. `raw_json` must already be valid
    /// JSON. No-op when disabled.
    pub fn set_extra(&self, key: &str, raw_json: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        if let Ok(mut extra) = inner.extra.lock() {
            let value = raw_json.into();
            match extra.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => extra.push((key.to_string(), value)),
            }
        }
    }

    /// Drain everything recorded so far into a [`TraceBook`]. Tracks and
    /// extra JSON fields stay registered (a long-lived recorder can be
    /// drained repeatedly).
    pub fn drain(&self) -> TraceBook {
        let Some(inner) = &self.inner else {
            return TraceBook::default();
        };
        let events = inner.events.lock().map(|mut e| std::mem::take(&mut *e));
        let tracks = inner.tracks.lock().map(|t| t.clone());
        let extra = inner.extra.lock().map(|e| e.clone());
        TraceBook {
            events: events.unwrap_or_default(),
            tracks: tracks.unwrap_or_default(),
            extra_json: extra.unwrap_or_default(),
        }
    }

    /// Total recorded span time per phase, in µs (flushed events only).
    /// Returns `(phase, total_dur_us, span_count)` for phases seen.
    pub fn phase_totals(&self) -> Vec<(Phase, u64, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut totals = [(0u64, 0u64); ALL_PHASES.len()];
        if let Ok(log) = inner.events.lock() {
            for e in log.iter() {
                if let Event::Span { phase, dur_us, .. } = e {
                    let slot = &mut totals[*phase as usize];
                    slot.0 = slot.0.saturating_add(*dur_us);
                    slot.1 += 1;
                }
            }
        }
        ALL_PHASES
            .into_iter()
            .zip(totals)
            .filter(|(_, (_, n))| *n > 0)
            .map(|(p, (d, n))| (p, d, n))
            .collect()
    }
}

/// An in-flight span opened by [`Track::begin`]; close it with
/// [`Track::end`]. Spans nest by call structure — close in LIFO order.
#[derive(Debug)]
#[must_use = "an open span records nothing until Track::end closes it"]
pub struct OpenSpan {
    phase: Phase,
    round: u32,
    start_us: u64,
}

/// A per-thread event buffer. All recording goes through a track; the
/// shared log is only locked on [`Track::flush`] (or drop).
#[derive(Debug)]
pub struct Track {
    rec: Recorder,
    id: u32,
    buf: Vec<Event>,
}

impl Track {
    /// The track id events carry.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Is the owning recorder enabled?
    pub fn is_enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Open a span.
    pub fn begin(&mut self, phase: Phase, round: u32) -> OpenSpan {
        OpenSpan {
            phase,
            round,
            start_us: self.rec.now_us(),
        }
    }

    /// Close a span opened by [`Track::begin`].
    pub fn end(&mut self, span: OpenSpan) {
        if self.rec.inner.is_none() {
            return;
        }
        let now = self.rec.now_us();
        self.buf.push(Event::Span {
            track: self.id,
            phase: span.phase,
            round: span.round,
            start_us: span.start_us,
            dur_us: now.saturating_sub(span.start_us),
        });
    }

    /// Record a closed span measured by the caller (µs).
    pub fn span_at(&mut self, phase: Phase, round: u32, start_us: u64, dur_us: u64) {
        if self.rec.inner.is_none() {
            return;
        }
        self.buf.push(Event::Span {
            track: self.id,
            phase,
            round,
            start_us,
            dur_us,
        });
    }

    /// Record a counter sample.
    pub fn count(&mut self, phase: Phase, round: u32, metric: Metric, value: u64) {
        if self.rec.inner.is_none() {
            return;
        }
        let at_us = self.rec.now_us();
        self.buf.push(Event::Count {
            track: self.id,
            phase,
            round,
            at_us,
            metric,
            value,
        });
    }

    /// A second buffer feeding the **same lane**: the fork shares this
    /// track's id but owns its own private buffer, so it can move into a
    /// scoped thread while the lane stays stable across rounds (shard
    /// threads are respawned per round; their lane should not be).
    /// Callers guarantee fork lifetimes don't overlap in wall time on
    /// conflicting spans — sequential rounds do this naturally.
    pub fn fork(&self) -> Track {
        Track {
            rec: self.rec.clone(),
            id: self.id,
            buf: Vec::new(),
        }
    }

    /// Push the private buffer into the shared log (one lock).
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Some(inner) = &self.rec.inner {
            if let Ok(mut log) = inner.events.lock() {
                log.append(&mut self.buf);
            }
        }
        self.buf.clear();
    }

    /// Drain this track's private buffer **without** touching the shared
    /// log — the cluster worker path, which ships its buffer to the
    /// master instead of keeping it locally.
    pub fn take_buffered(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buf)
    }
}

impl Drop for Track {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The ambient process-wide recorder, disabled until
/// [`install_global`] runs. Engines too deep to thread a handle through
/// (the datalog shards, the serve request loop) record here.
static GLOBAL: OnceLock<RwLock<Recorder>> = OnceLock::new();

fn global_cell() -> &'static RwLock<Recorder> {
    GLOBAL.get_or_init(|| RwLock::new(Recorder::disabled()))
}

/// Install `rec` as the process-wide ambient recorder.
pub fn install_global(rec: Recorder) {
    if let Ok(mut g) = global_cell().write() {
        *g = rec;
    }
}

/// A clone of the ambient recorder (disabled by default — cheap: one
/// RwLock read + an `Option<Arc>` clone; grab once per scope, not per
/// event).
pub fn global() -> Recorder {
    global_cell().read().map(|g| g.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn recorder_overhead_is_bounded() {
        // A lenient sanity bound, not a benchmark: 100k span begin/ends
        // (two clock reads + one Vec push each) must stay far below
        // 10 µs/event on anything that can build this crate.
        let rec = Recorder::enabled();
        let mut t = rec.track("hot");
        let t0 = Instant::now();
        for i in 0..100_000u32 {
            let s = t.begin(Phase::Join, i % 7);
            t.end(s);
        }
        t.flush();
        let per_event_ns = t0.elapsed().as_nanos() / 100_000;
        assert!(per_event_ns < 10_000, "recording cost {per_event_ns} ns/span");
        assert_eq!(rec.drain().events.len(), 100_000);
    }

    #[test]
    fn set_extra_rides_every_drain_and_replaces_by_key() {
        let rec = Recorder::enabled();
        rec.set_extra("plan", "{\"strategy\":\"auto\"}");
        rec.set_extra("plan", "{\"strategy\":\"data/hash\"}");
        rec.set_extra("note", "1");
        let book = rec.drain();
        assert_eq!(
            book.extra_json,
            vec![
                ("plan".to_string(), "{\"strategy\":\"data/hash\"}".to_string()),
                ("note".to_string(), "1".to_string()),
            ]
        );
        // Extras persist across drains.
        assert_eq!(rec.drain().extra_json.len(), 2);
        // Disabled recorders ignore extras entirely.
        let off = Recorder::disabled();
        off.set_extra("plan", "{}");
        assert!(off.drain().extra_json.is_empty());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        let mut t = rec.track("x");
        let s = t.begin(Phase::Join, 0);
        t.end(s);
        t.count(Phase::Exchange, 0, Metric::Bytes, 42);
        t.flush();
        assert!(rec.drain().events.is_empty());
        assert!(!rec.is_enabled());
        assert_eq!(rec.now_us(), 0);
    }

    #[test]
    fn spans_carry_track_phase_round_and_nest() {
        let rec = Recorder::enabled();
        let mut t = rec.track("worker 0");
        let outer = t.begin(Phase::Round, 3);
        let inner = t.begin(Phase::Join, 3);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end(inner);
        t.end(outer);
        t.flush();
        let book = rec.drain();
        assert_eq!(book.events.len(), 2);
        assert_eq!(book.tracks.len(), 1);
        assert_eq!(book.tracks[0].name, "worker 0");
        let (mut round, mut join) = (None, None);
        for e in &book.events {
            let Event::Span {
                phase,
                round: r,
                start_us,
                dur_us,
                ..
            } = *e
            else {
                panic!("expected spans");
            };
            assert_eq!(r, 3);
            match phase {
                Phase::Round => round = Some((start_us, dur_us)),
                Phase::Join => join = Some((start_us, dur_us)),
                other => panic!("unexpected {other:?}"),
            }
        }
        let (rs, rd) = round.unwrap();
        let (js, jd) = join.unwrap();
        // The join span nests inside the round span.
        assert!(js >= rs && js + jd <= rs + rd, "join must nest in round");
        assert!(jd >= 2_000, "slept 2ms inside the join span");
    }

    #[test]
    fn absorb_shifts_and_retracks() {
        let rec = Recorder::enabled();
        let foreign = vec![Event::Span {
            track: 7,
            phase: Phase::Join,
            round: 1,
            start_us: 100,
            dur_us: 50,
        }];
        let n = rec.absorb(&foreign, "worker 2", 3, 1_000);
        assert_eq!(n, 1);
        let book = rec.drain();
        assert_eq!(book.events.len(), 1);
        let Event::Span {
            track, start_us, ..
        } = book.events[0]
        else {
            panic!("span");
        };
        assert_eq!(start_us, 1_100);
        let meta = book.tracks.iter().find(|t| t.id == track).unwrap();
        assert_eq!(meta.pid, 3);
        assert_eq!(meta.name, "worker 2");
    }

    #[test]
    fn negative_offsets_saturate_rather_than_wrap() {
        let rec = Recorder::enabled();
        let foreign = vec![Event::Count {
            track: 0,
            phase: Phase::Exchange,
            round: 0,
            at_us: 10,
            metric: Metric::Bytes,
            value: 1,
        }];
        rec.absorb(&foreign, "w", 1, -100);
        let book = rec.drain();
        let Event::Count { at_us, .. } = book.events[0] else {
            panic!("count");
        };
        assert_eq!(at_us, 0);
    }

    #[test]
    fn phase_totals_sum_durations() {
        let rec = Recorder::enabled();
        let mut t = rec.track("x");
        t.span_at(Phase::Join, 0, 0, 100);
        t.span_at(Phase::Join, 1, 200, 300);
        t.span_at(Phase::Dedup, 0, 50, 10);
        t.flush();
        let totals = rec.phase_totals();
        assert_eq!(
            totals,
            vec![(Phase::Join, 400, 2), (Phase::Dedup, 10, 1)]
        );
    }

    #[test]
    fn phase_names_roundtrip() {
        for p in ALL_PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
            assert_eq!(Phase::from_u8(p as u8), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
        assert_eq!(Phase::from_u8(200), None);
    }

    #[test]
    fn global_defaults_to_disabled_and_installs() {
        assert!(!global().is_enabled() || global().is_enabled());
        // (other tests may have installed a recorder; just exercise the
        // install path without asserting cross-test global state)
        let rec = Recorder::enabled();
        install_global(rec.clone());
        assert!(global().is_enabled());
        install_global(Recorder::disabled());
    }
}
