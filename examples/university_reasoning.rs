//! University-scale reasoning: the workload from the paper's evaluation.
//!
//! ```text
//! cargo run --release --example university_reasoning [universities] [scale]
//! ```
//!
//! Generates a LUBM universe, materializes it serially and in parallel
//! with all three data-partitioning policies, and reports speedups and
//! partition quality — a miniature of the paper's Figure 5.

// Examples favour directness over error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let universities: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);
    let scale: f64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(0.15);

    let graph = generate_lubm(&LubmConfig {
        universities,
        scale,
        seed: 42,
    });
    println!(
        "LUBM-{universities} @ scale {scale}: {} triples\n",
        graph.len()
    );

    // Serial baseline with the Jena-style backward engine.
    let mut serial = graph.clone();
    let (derived, serial_time) = run_serial(
        &mut serial,
        owlpar::datalog::MaterializationStrategy::BackwardPerResource(
            owlpar::datalog::backward::TableScope::PerQuery,
        ),
    );
    println!(
        "serial closure: {derived} derived in {:.2}s",
        serial_time.as_secs_f64()
    );

    for (name, strategy) in [
        ("graph", PartitioningStrategy::data_graph()),
        ("domain", PartitioningStrategy::data_domain()),
        ("hash", PartitioningStrategy::data_hash()),
    ] {
        let mut g = graph.clone();
        let report = run_parallel(
            &mut g,
            &ParallelConfig {
                k: 4,
                strategy,
                ..ParallelConfig::default()
            },
        )
        .expect("clean run");
        assert_eq!(g.term_fingerprint(), serial.term_fingerprint());
        let q = report.partition_quality.as_ref().unwrap();
        println!(
            "k=4 {name:>6}: {:.2}s  speedup {:.2}x  rounds {}  IR {:.3}  cut {:?}",
            report.parallel_time.as_secs_f64(),
            serial_time.as_secs_f64() / report.parallel_time.as_secs_f64(),
            report.max_rounds(),
            q.ir_excess(),
            report.edge_cut,
        );
    }
}
