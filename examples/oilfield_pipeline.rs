//! Oilfield asset reasoning: the MDC-style workload.
//!
//! ```text
//! cargo run --release --example oilfield_pipeline
//! ```
//!
//! Generates the synthetic oilfield KB, materializes it in parallel, then
//! answers the kind of question the CiSoft project needed: "every asset
//! transitively part of field 0" — which only works because the
//! `partOf` transitive closure was materialized.

// Examples favour directness over error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::datagen::ontology::mdc;
use owlpar::prelude::*;
use owlpar::rdf::TriplePattern;

fn main() {
    let mut graph = generate_mdc(&MdcConfig {
        fields: 3,
        wells_per_field: 8,
        equipment_chain: 5,
        sensors_per_equipment: 2,
        measurements_per_sensor: 2,
        seed: 7,
    });
    let before = graph.len();

    let report = run_parallel(
        &mut graph,
        &ParallelConfig {
            k: 3,
            strategy: PartitioningStrategy::data_domain(), // cluster by field
            ..ParallelConfig::default()
        },
    )
    .expect("clean run");
    println!(
        "oilfield KB: {before} base triples, {} derived, {} rounds",
        report.derived,
        report.max_rounds()
    );

    // Query: everything transitively partOf field 0.
    let part_of = graph.dict.id(&Term::iri(mdc("partOf"))).unwrap();
    let field0 = graph
        .dict
        .id(&Term::iri("http://www.field0.mdc.org/field"))
        .unwrap();
    let members = graph.matches(TriplePattern::new(None, Some(part_of), Some(field0)));
    println!("assets part of field0 (transitively): {}", members.len());

    // Spot-check: a sensor four levels deep is directly linked after
    // materialization.
    let deep_sensor = graph
        .dict
        .id(&Term::iri("http://www.field0.mdc.org/well0/eq4/sensor0"))
        .expect("generated sensor exists");
    assert!(
        members.iter().any(|t| t.s == deep_sensor),
        "transitive closure must lift the deep sensor to the field"
    );
    println!("deep sensor is reachable: OK");

    // connectedTo symmetry: the well pipeline is navigable both ways.
    let connected = graph.dict.id(&Term::iri(mdc("connectedTo"))).unwrap();
    let w0 = graph
        .dict
        .id(&Term::iri("http://www.field0.mdc.org/well0"))
        .unwrap();
    let w1 = graph
        .dict
        .id(&Term::iri("http://www.field0.mdc.org/well1"))
        .unwrap();
    assert!(graph.store.contains(&Triple::new(w0, connected, w1)));
    assert!(graph.store.contains(&Triple::new(w1, connected, w0)));
    println!("pipeline symmetry holds: OK");
}
