//! Run the LUBM query mix against a raw and a materialized KB — the
//! query-side payoff that motivates materialization in the first place.
//!
//! ```text
//! cargo run --release --example sparql_queries
//! ```

// Examples favour directness over error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::prelude::*;
use owlpar::query::lubm::queries;

fn main() {
    let raw = generate_lubm(&LubmConfig {
        universities: 2,
        scale: 0.15,
        seed: 42,
    });
    let mut materialized = raw.clone();
    let report = run_parallel(
        &mut materialized,
        &ParallelConfig {
            k: 2,
            ..ParallelConfig::default()
        }
        .forward(),
    )
    .expect("clean run");
    println!(
        "KB: {} base triples, {} derived by the parallel reasoner\n",
        raw.len(),
        report.derived
    );
    println!("{:<5} {:>9} {:>13}  note", "query", "raw rows", "closed rows");

    let mut raw = raw;
    let mut closed = materialized;
    for (name, needs_inference, src) in queries() {
        let q_raw = parse_query(&src, &mut raw.dict).expect("query parses");
        let raw_rows = execute(&raw.store, &q_raw).len();
        let q_closed = parse_query(&src, &mut closed.dict).expect("query parses");
        let closed_rows = execute(&closed.store, &q_closed).len();
        println!(
            "{name:<5} {raw_rows:>9} {closed_rows:>13}  {}",
            if needs_inference {
                "needs OWL inference"
            } else {
                ""
            }
        );
    }

    // One ad-hoc query with rendered rows.
    let src = format!(
        "{}SELECT DISTINCT ?g WHERE {{ ?g a ub:ResearchGroup . \
         ?g ub:subOrganizationOf <http://www.univ0.edu/university> . }} LIMIT 5",
        owlpar::query::lubm::PREFIX
    );
    let q = parse_query(&src, &mut closed.dict).unwrap();
    println!("\nfirst research groups transitively under university 0:");
    for row in execute(&closed.store, &q) {
        println!("  {}", owlpar::query::exec::render_row(&closed.dict, &row).join(" "));
    }
}
