//! Partition explorer: inspect what the three ownership policies do to a
//! dataset before committing to a parallel run.
//!
//! ```text
//! cargo run --release --example partition_explorer [lubm|uobm|mdc] [k]
//! ```
//!
//! Prints the Table-I metrics (bal / IR / partition time / edge-cut) per
//! policy, which is how the paper recommends choosing a policy for a new
//! dataset.

// Examples favour directness over error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::horst::HorstReasoner;
use owlpar::partition::metrics::quality;
use owlpar::partition::multilevel::PartitionOptions;
use owlpar::prelude::*;
use owlpar::rdf::vocab::RDF_TYPE;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "lubm".into());
    let k: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);

    let mut graph = match which.as_str() {
        "uobm" => generate_uobm(&UobmConfig::mini(4)),
        "mdc" => generate_mdc(&MdcConfig::default()),
        _ => generate_lubm(&LubmConfig {
            universities: 4,
            scale: 0.15,
            seed: 42,
        }),
    };
    println!("dataset {which}: {} triples, k={k}\n", graph.len());

    let hr = HorstReasoner::from_graph(
        &mut graph,
        MaterializationStrategy::ForwardSemiNaive,
    );
    println!(
        "schema: {} triples   instance: {} triples   compiled rules: {}\n",
        hr.schema_triples.len(),
        hr.instance_triples.len(),
        hr.rules().len()
    );
    let rdf_type = graph.dict.id(&Term::iri(RDF_TYPE));

    for (name, policy) in [
        ("graph", OwnershipPolicy::Graph(PartitionOptions::default())),
        ("domain", OwnershipPolicy::Domain(None)),
        ("hash", OwnershipPolicy::Hash { seed: 1 }),
    ] {
        let dp = partition_data(&hr.instance_triples, &graph.dict, rdf_type, k, &policy);
        let q = quality(&dp.parts, rdf_type);
        println!(
            "{name:>6}: bal {:>8.1}  IR {:.3}  time {:>7.3}s  cut {:?}",
            q.bal,
            q.ir_excess(),
            dp.partition_time.as_secs_f64(),
            dp.edge_cut
        );
        println!("         triples/partition: {:?}", q.triple_counts);
    }
}
