//! Quickstart: materialize a small OWL knowledge base in parallel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a tiny family ontology by hand (N-Triples), closes it with the
//! parallel reasoner, and prints what was inferred.

// Examples favour directness over error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::prelude::*;

const DATA: &str = r#"
# --- ontology ---------------------------------------------------------
<http://ex.org/ont#Parent> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex.org/ont#Person> .
<http://ex.org/ont#ancestorOf> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#TransitiveProperty> .
<http://ex.org/ont#parentOf> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://ex.org/ont#ancestorOf> .
<http://ex.org/ont#parentOf> <http://www.w3.org/2000/01/rdf-schema#domain> <http://ex.org/ont#Parent> .
<http://ex.org/ont#marriedTo> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#SymmetricProperty> .

# --- instance data ----------------------------------------------------
<http://ex.org/people/ada> <http://ex.org/ont#parentOf> <http://ex.org/people/bob> .
<http://ex.org/people/bob> <http://ex.org/ont#parentOf> <http://ex.org/people/cyd> .
<http://ex.org/people/cyd> <http://ex.org/ont#parentOf> <http://ex.org/people/dee> .
<http://ex.org/people/ada> <http://ex.org/ont#marriedTo> <http://ex.org/people/al> .
"#;

fn main() {
    let mut graph = Graph::new();
    let base = parse_ntriples(DATA, &mut graph).expect("well-formed N-Triples");
    println!("loaded {base} triples");

    // Close the KB on 2 workers using min-cut data partitioning.
    let report = run_parallel(
        &mut graph,
        &ParallelConfig {
            k: 2,
            ..ParallelConfig::default()
        },
    )
    .expect("clean run");

    println!(
        "derived {} new triples in {} round(s) across {} workers:\n",
        report.derived,
        report.max_rounds(),
        report.k
    );
    // Print the full closure; the derived facts include
    //   ada ancestorOf cyd/dee (subproperty + transitivity),
    //   ada/bob/cyd rdf:type Parent then Person (domain + subclass),
    //   al marriedTo ada (symmetry).
    print!("{}", write_ntriples(&graph));
}
