//! The `owlpar` command-line tool: load, materialize (in parallel),
//! query, partition-inspect and snapshot OWL knowledge bases.
//!
//! ```text
//! owlpar materialize <in.nt> <out.nt> [--k 4] [--strategy graph|hash|domain|rule|hybrid|auto] [--async]
//!                    [--fault-plan 'io@1.0:2,panic@1.2,...'] [--trace-out FILE]
//! owlpar query <kb.nt> '<SPARQL>'
//! owlpar lint <rules-file> [--context data|rule|replicated] [--json]
//! owlpar lint --compiled [<in.nt>] [--json]
//! owlpar plan <kb.nt|rules-file> [--strategy data|rule|hybrid|auto] [--k 4] [--json]
//! owlpar partition <in.nt> [--k 4]
//! owlpar snapshot <in.nt> <out.owlpar>
//! owlpar restore <in.owlpar> <out.nt>
//! owlpar gen <lubm|uobm|mdc> <out.nt> [--universities 2] [--scale 0.1]
//! owlpar trace summary <trace.json>
//! ```
//!
//! Exit codes: 0 success, 1 usage/IO error, 3 the parallel run itself
//! failed (a `RunError` — lost workers without recovery, bad config) or
//! the linted rule-base has deny-level findings.

use owlpar::core::config::RoundMode;
use owlpar::core::{
    analyze_rules_only, analyze_strategy, auto_candidates, FaultPlan, PlanningBase, RunError,
};
use owlpar::datalog::{parse_rules_annotated, Rule};
use owlpar::horst::HorstReasoner;
use owlpar::lint::{
    lint_parsed, lint_rules, render_comparison, LintOptions, PartitionContext, PlanReport,
};
use owlpar::partition::metrics::quality;
use owlpar::partition::multilevel::PartitionOptions;
use owlpar::prelude::*;
use owlpar::query::exec::render_row;
use owlpar::rdf::snapshot;
use owlpar::rdf::vocab::RDF_TYPE;
use owlpar::rdf::Dictionary;
use std::process::ExitCode;

/// What went wrong, split by exit code.
enum CliError {
    /// Bad arguments or IO trouble — exit code 1.
    Usage(String),
    /// The parallel run failed with a structured error — exit code 3.
    Run(RunError),
    /// The linted rule-base has deny findings — exit code 3. The report
    /// itself was already printed to stdout.
    Lint {
        /// Number of deny findings.
        deny: usize,
    },
    /// The analyzed plan(s) have deny-level diagnostics (OWL011–OWL016)
    /// — exit code 3. The reports were already printed to stdout.
    Plan {
        /// Number of deny findings across the analyzed plans.
        deny: usize,
    },
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Usage(s.to_string())
    }
}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        CliError::Run(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("owlpar: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Run(e)) => {
            eprintln!("owlpar: run failed: {e}");
            ExitCode::from(3)
        }
        Err(CliError::Lint { deny }) => {
            eprintln!("owlpar: lint failed with {deny} deny finding(s)");
            ExitCode::from(3)
        }
        Err(CliError::Plan { deny }) => {
            eprintln!("owlpar: plan analysis failed with {deny} deny finding(s)");
            ExitCode::from(3)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut g = Graph::new();
    parse_ntriples(&text, &mut g).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(g)
}

fn save_graph(g: &Graph, path: &str) -> Result<(), String> {
    std::fs::write(path, write_ntriples(g)).map_err(|e| format!("writing {path}: {e}"))
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let cmd = args.first().cloned().unwrap_or_default();
    let rest = &args[args.len().min(1)..];
    match cmd.as_str() {
        "materialize" => materialize(rest),
        "query" => query(rest).map_err(CliError::Usage),
        "lint" => lint_cmd(rest),
        "plan" => plan_cmd(rest),
        "partition" => partition_info(rest).map_err(CliError::Usage),
        "snapshot" => snapshot_cmd(rest).map_err(CliError::Usage),
        "restore" => restore(rest).map_err(CliError::Usage),
        "gen" => gen(rest).map_err(CliError::Usage),
        "trace" => trace_cmd(rest).map_err(CliError::Usage),
        _ => Err(CliError::Usage(format!(
            "usage: owlpar <materialize|query|lint|plan|partition|snapshot|restore|gen|trace> ... (got '{cmd}')"
        ))),
    }
}

fn materialize(args: &[String]) -> Result<(), CliError> {
    let [input, output, ..] = args else {
        return Err("materialize needs <in.nt> <out.nt>".into());
    };
    let k: usize = flag_value(args, "--k")
        .map_or(Ok(2), |v| v.parse().map_err(|_| "--k".to_string()))?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("graph") => PartitioningStrategy::data_graph(),
        Some("hash") => PartitioningStrategy::data_hash(),
        Some("domain") => PartitioningStrategy::data_domain(),
        Some("rule") => PartitioningStrategy::rule(),
        Some("hybrid") => PartitioningStrategy::Hybrid {
            rule_groups: if k.is_multiple_of(2) { 2 } else { 1 },
        },
        Some("auto") => PartitioningStrategy::Auto,
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    };
    let rounds = if args.iter().any(|a| a == "--async") {
        RoundMode::Async
    } else {
        RoundMode::Barrier
    };
    let mut cfg = ParallelConfig {
        k,
        strategy,
        rounds,
        ..ParallelConfig::default()
    }
    .forward();
    if let Some(spec) = flag_value(args, "--fault-plan") {
        let plan = FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?;
        cfg = cfg.with_faults(plan);
    }
    // Tracing: install an enabled global recorder before the run so the
    // engine's ambient spans (partition, rounds, shard lanes, aggregate)
    // land in it; the Parse span covers the N-Triples load.
    let trace_out = flag_value(args, "--trace-out");
    let recorder = trace_out.as_ref().map(|_| {
        let rec = owlpar::obs::Recorder::enabled();
        owlpar::obs::install_global(rec.clone());
        rec
    });
    let rec = owlpar::obs::global();
    let mut lane = rec.track("cli");
    let parse_span = lane.begin(owlpar::obs::Phase::Parse, owlpar::obs::NO_ROUND);
    let mut g = load_graph(input)?;
    lane.end(parse_span);
    let before = g.len();
    let report = run_parallel(&mut g, &cfg)?;
    save_graph(&g, output)?;
    drop(lane);
    if let (Some(path), Some(rec)) = (&trace_out, &recorder) {
        let book = rec.drain();
        owlpar::obs::install_global(owlpar::obs::Recorder::disabled());
        std::fs::write(path, owlpar::obs::chrome::to_chrome_json(&book))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "trace written to {path} ({} event(s), {} lane(s))",
            book.events.len(),
            book.tracks.len()
        );
    }
    // The one-line run summary includes the skipped-message count, so a
    // lossy-but-recovered run is visible at a glance.
    println!("{before} base triples -> {} total: {}", g.len(), report.summary());
    if report.recovered {
        for e in &report.worker_errors {
            eprintln!("owlpar: recovered from: {e}");
        }
        eprintln!(
            "owlpar: {} worker(s) lost; closure re-derived serially (still exact)",
            report.worker_errors.len()
        );
    }
    if report.total_skipped() > 0 {
        eprintln!(
            "owlpar: {} corrupted/foreign message(s) skipped with a report",
            report.total_skipped()
        );
    }
    Ok(())
}

/// `owlpar lint` — run the static analyses over a rule file (with `#
/// lint: allow(...)` annotations honoured) or over the rule-base compiled
/// from an ontology (`--compiled [<in.nt>]`; no path lints the bundled
/// demo ontology exercising every rule template). Deny findings exit 3.
fn lint_cmd(args: &[String]) -> Result<(), CliError> {
    let json = args.iter().any(|a| a == "--json");
    let context = match flag_value(args, "--context").as_deref() {
        None | Some("data") => PartitionContext::DataPartitioned,
        Some("rule") => PartitionContext::RulePartitioned,
        Some("replicated") => PartitionContext::Replicated,
        Some(other) => return Err(CliError::Usage(format!("unknown context '{other}'"))),
    };
    // Positional arguments: everything that is neither a flag nor the
    // value of --context.
    let mut positionals: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--context" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        positionals.push(a);
    }
    let report = if args.iter().any(|a| a == "--compiled") {
        let mut g = match positionals.first() {
            Some(path) => load_graph(path)?,
            None => demo_ontology(),
        };
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        if context == PartitionContext::DataPartitioned {
            // Already linted at construction, against the actual data
            // (histogram weights + dead-rule vocabulary).
            hr.lint.clone()
        } else {
            lint_rules(hr.rules(), &LintOptions::for_context(context))
        }
    } else {
        let Some(path) = positionals.first() else {
            return Err("lint needs <rules-file> or --compiled [<in.nt>]".into());
        };
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut dict = Dictionary::new();
        let parsed = parse_rules_annotated(&text, &mut dict)
            .map_err(|e| format!("parsing {path}: {e}"))?;
        lint_parsed(&parsed, LintOptions::for_context(context))
    };
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if report.has_deny() {
        Err(CliError::Lint {
            deny: report.deny_count(),
        })
    } else {
        Ok(())
    }
}

/// `owlpar plan` — analyze partition plans statically, before any worker
/// exists. Scores every `--strategy auto` candidate (or just the one
/// requested) against the KB — or, for a `.rules` file, runs the
/// structure-only analysis with uniform load shares and no byte
/// estimates — prints the comparison table (or `--json`), and exits 3
/// when no deny-free plan exists: the same non-overridable gate
/// `materialize --strategy auto` applies before spawning workers.
fn plan_cmd(args: &[String]) -> Result<(), CliError> {
    let json = args.iter().any(|a| a == "--json");
    let k: usize = flag_value(args, "--k")
        .map_or(Ok(4), |v| v.parse().map_err(|_| "--k".to_string()))?;
    if k == 0 {
        return Err("--k must be >= 1".into());
    }
    let strategy_flag = flag_value(args, "--strategy");
    let candidates = match strategy_flag.as_deref() {
        None | Some("auto") => auto_candidates(k),
        Some("data") => vec![PartitioningStrategy::data_graph()],
        Some("rule") => vec![PartitioningStrategy::Rule { weighted: true }],
        Some("hybrid") => vec![PartitioningStrategy::Hybrid {
            rule_groups: if k.is_multiple_of(2) { 2 } else { 1 },
        }],
        Some(other) => {
            return Err(format!("unknown strategy '{other}' (data|rule|hybrid|auto)").into())
        }
    };
    // Positional arguments: everything that is neither a flag nor the
    // value of a flag that takes one.
    let mut positionals: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--strategy" || a == "--k" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        positionals.push(a);
    }
    let Some(path) = positionals.first() else {
        return Err("plan needs <kb.nt|rules-file>".into());
    };
    let reports: Vec<PlanReport> = if path.ends_with(".rules") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut dict = Dictionary::new();
        let parsed = parse_rules_annotated(&text, &mut dict)
            .map_err(|e| format!("parsing {path}: {e}"))?;
        let rules: Vec<Rule> = parsed.iter().map(|p| p.rule.clone()).collect();
        candidates
            .iter()
            .map(|c| analyze_rules_only(&rules, k, c))
            .collect::<Result<_, RunError>>()?
    } else {
        let mut g = load_graph(path)?;
        let base = PlanningBase::compile(&mut g, &[]);
        candidates
            .iter()
            .map(|c| analyze_strategy(&base, &g.dict, k, c))
            .collect::<Result<_, RunError>>()?
    };
    // The argmin-cost deny-free plan — exactly what `--strategy auto`
    // would run. With a single requested strategy this is just "is it
    // viable at all".
    let chosen = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.has_deny())
        .min_by(|a, b| a.1.total_cost.total_cmp(&b.1.total_cost))
        .map(|(i, _)| i);
    if json {
        let strategies: Vec<serde_json::Value> =
            reports.iter().map(PlanReport::to_json).collect();
        let doc = serde_json::json!({
            "k": (k as u64),
            "chosen": (chosen.map(|i| reports[i].strategy.clone())),
            "strategies": strategies,
        });
        println!("{doc}");
    } else {
        println!("{}", render_comparison(&reports, chosen));
        for (i, r) in reports.iter().enumerate() {
            if chosen == Some(i) || r.has_deny() {
                println!("\n{}", r.render_human());
            }
        }
    }
    match chosen {
        Some(_) => Ok(()),
        None => Err(CliError::Plan {
            deny: reports.iter().map(PlanReport::deny_count).sum(),
        }),
    }
}

/// A small ontology exercising every rule template the compiler knows:
/// class/property hierarchies, transitive/symmetric/inverse(-functional)
/// characteristics, equivalence, domain/range and both restriction kinds —
/// what `owlpar lint --compiled` verifies when no ontology is given.
fn demo_ontology() -> Graph {
    use owlpar::rdf::vocab::{
        OWL_EQUIVALENT_CLASS, OWL_HAS_VALUE, OWL_INVERSE_FUNCTIONAL, OWL_INVERSE_OF,
        OWL_ON_PROPERTY, OWL_RESTRICTION, OWL_SOME_VALUES_FROM, OWL_SYMMETRIC, OWL_TRANSITIVE,
        RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF,
    };
    let u = |n: &str| format!("http://ex.org/ont#{n}");
    let d = |n: &str| format!("http://ex.org/d/{n}");
    let mut g = Graph::new();
    g.insert_iris(u("GradStudent"), RDFS_SUBCLASSOF, u("Student"));
    g.insert_iris(u("Student"), RDFS_SUBCLASSOF, u("Person"));
    g.insert_iris(u("Person"), OWL_EQUIVALENT_CLASS, u("Human"));
    g.insert_iris(u("headOf"), RDFS_SUBPROPERTYOF, u("worksFor"));
    g.insert_iris(u("partOf"), RDF_TYPE, OWL_TRANSITIVE);
    g.insert_iris(u("near"), RDF_TYPE, OWL_SYMMETRIC);
    g.insert_iris(u("advises"), OWL_INVERSE_OF, u("advisedBy"));
    g.insert_iris(u("teaches"), RDFS_DOMAIN, u("Professor"));
    g.insert_iris(u("teaches"), RDFS_RANGE, u("Course"));
    g.insert_iris(u("email"), RDF_TYPE, OWL_INVERSE_FUNCTIONAL);
    g.insert_iris(u("Grouped"), RDF_TYPE, OWL_RESTRICTION);
    g.insert_iris(u("Grouped"), OWL_ON_PROPERTY, u("memberOf"));
    g.insert_iris(u("Grouped"), OWL_SOME_VALUES_FROM, u("Group"));
    g.insert_iris(u("Answered"), RDF_TYPE, OWL_RESTRICTION);
    g.insert_iris(u("Answered"), OWL_ON_PROPERTY, u("hasId"));
    g.insert_terms(
        Term::iri(u("Answered")),
        Term::iri(OWL_HAS_VALUE),
        Term::literal("42"),
    );
    // A little instance data, so the production-weight histogram and the
    // dead-rule base vocabulary have something to look at.
    g.insert_iris(d("alice"), RDF_TYPE, u("GradStudent"));
    g.insert_iris(d("a"), u("partOf"), d("b"));
    g.insert_iris(d("b"), u("partOf"), d("c"));
    g.insert_iris(d("x"), u("near"), d("y"));
    g.insert_iris(d("bob"), u("headOf"), d("dept"));
    g.insert_iris(d("carol"), u("advises"), d("alice"));
    g.insert_iris(d("prof"), u("teaches"), d("cs101"));
    g.insert_iris(d("p1"), u("email"), d("e1"));
    g.insert_iris(d("gina"), u("memberOf"), d("g1"));
    g.insert_iris(d("g1"), RDF_TYPE, u("Group"));
    g
}

fn query(args: &[String]) -> Result<(), String> {
    let [input, sparql, ..] = args else {
        return Err("query needs <kb.nt> '<SPARQL>'".into());
    };
    let mut g = load_graph(input)?;
    let q = parse_query(sparql, &mut g.dict).map_err(|e| e.to_string())?;
    let rows = execute(&g.store, &q);
    println!("{}", q.projected_names().join("\t"));
    for row in &rows {
        println!("{}", render_row(&g.dict, row).join("\t"));
    }
    eprintln!("{} row(s)", rows.len());
    Ok(())
}

fn partition_info(args: &[String]) -> Result<(), String> {
    let [input, ..] = args else {
        return Err("partition needs <in.nt>".into());
    };
    let k: usize = flag_value(args, "--k").map_or(Ok(4), |v| v.parse().map_err(|_| "--k"))?;
    let mut g = load_graph(input)?;
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    let rdf_type = g.dict.id(&Term::iri(RDF_TYPE));
    println!(
        "schema {} / instance {} triples, {} compiled rules",
        hr.schema_triples.len(),
        hr.instance_triples.len(),
        hr.rules().len()
    );
    for (name, policy) in [
        ("graph", OwnershipPolicy::Graph(PartitionOptions::default())),
        ("domain", OwnershipPolicy::Domain(None)),
        ("hash", OwnershipPolicy::Hash { seed: 1 }),
    ] {
        let dp = partition_data(&hr.instance_triples, &g.dict, rdf_type, k, &policy);
        let q = quality(&dp.parts, rdf_type);
        println!(
            "{name:>6}: bal {:>9.1}  IR {:.3}  cut {:?}  time {:.3}s",
            q.bal,
            q.ir_excess(),
            dp.edge_cut,
            dp.partition_time.as_secs_f64()
        );
    }
    Ok(())
}

fn snapshot_cmd(args: &[String]) -> Result<(), String> {
    let [input, output, ..] = args else {
        return Err("snapshot needs <in.nt> <out.owlpar>".into());
    };
    let g = load_graph(input)?;
    let mut f = std::fs::File::create(output).map_err(|e| e.to_string())?;
    snapshot::save(&g, &mut f).map_err(|e| e.to_string())?;
    println!("wrote {} ({} triples, {} terms)", output, g.len(), g.dict.len());
    Ok(())
}

fn restore(args: &[String]) -> Result<(), String> {
    let [input, output, ..] = args else {
        return Err("restore needs <in.owlpar> <out.nt>".into());
    };
    let mut f = std::fs::File::open(input).map_err(|e| e.to_string())?;
    let g = snapshot::load(&mut f).map_err(|e| e.to_string())?;
    save_graph(&g, output)?;
    println!("restored {} triples", g.len());
    Ok(())
}

fn gen(args: &[String]) -> Result<(), String> {
    let [which, output, ..] = args else {
        return Err("gen needs <lubm|uobm|mdc> <out.nt>".into());
    };
    let universities: usize =
        flag_value(args, "--universities").map_or(Ok(2), |v| v.parse().map_err(|_| "--universities"))?;
    let scale: f64 = flag_value(args, "--scale").map_or(Ok(0.1), |v| v.parse().map_err(|_| "--scale"))?;
    let g = match which.as_str() {
        "lubm" => generate_lubm(&LubmConfig {
            universities,
            scale,
            seed: 42,
        }),
        "uobm" => generate_uobm(&UobmConfig {
            lubm: LubmConfig {
                universities,
                scale,
                seed: 42,
            },
            ..UobmConfig::default()
        }),
        "mdc" => generate_mdc(&MdcConfig::default()),
        other => return Err(format!("unknown generator '{other}'")),
    };
    save_graph(&g, output)?;
    println!("generated {} triples into {output}", g.len());
    Ok(())
}

/// `owlpar trace summary <trace.json>` — digest a Chrome-trace file
/// written by `--trace-out` (any of `owlpar materialize`,
/// `owlpar-cluster master`, `owlpar-serve run`) into a per-phase /
/// per-lane table: wall and span time per phase, per-worker round skew,
/// critical-path share, exchange bytes per round, and — when the file
/// embeds the analyzer's `"plan"` predictions — measured vs predicted.
fn trace_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("summary") => {
            let Some(path) = args.get(1) else {
                return Err("trace summary needs <trace.json>".into());
            };
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let rendered = owlpar::obs::summary::summarize_text(&text)
                .map_err(|e| format!("summarizing {path}: {e}"))?;
            println!("{rendered}");
            Ok(())
        }
        other => Err(format!(
            "usage: owlpar trace summary <trace.json> (got '{}')",
            other.unwrap_or_default()
        )),
    }
}
