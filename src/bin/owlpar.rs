//! The `owlpar` command-line tool: load, materialize (in parallel),
//! query, partition-inspect and snapshot OWL knowledge bases.
//!
//! ```text
//! owlpar materialize <in.nt> <out.nt> [--k 4] [--strategy graph|hash|domain|rule|hybrid] [--async]
//!                    [--fault-plan 'io@1.0:2,panic@1.2,...']
//! owlpar query <kb.nt> '<SPARQL>'
//! owlpar partition <in.nt> [--k 4]
//! owlpar snapshot <in.nt> <out.owlpar>
//! owlpar restore <in.owlpar> <out.nt>
//! owlpar gen <lubm|uobm|mdc> <out.nt> [--universities 2] [--scale 0.1]
//! ```
//!
//! Exit codes: 0 success, 1 usage/IO error, 3 the parallel run itself
//! failed (a `RunError` — lost workers without recovery, bad config).

use owlpar::core::config::RoundMode;
use owlpar::core::{FaultPlan, RunError};
use owlpar::horst::HorstReasoner;
use owlpar::partition::metrics::quality;
use owlpar::partition::multilevel::PartitionOptions;
use owlpar::prelude::*;
use owlpar::query::exec::render_row;
use owlpar::rdf::snapshot;
use owlpar::rdf::vocab::RDF_TYPE;
use std::process::ExitCode;

/// What went wrong, split by exit code.
enum CliError {
    /// Bad arguments or IO trouble — exit code 1.
    Usage(String),
    /// The parallel run failed with a structured error — exit code 3.
    Run(RunError),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Usage(s.to_string())
    }
}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        CliError::Run(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("owlpar: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Run(e)) => {
            eprintln!("owlpar: run failed: {e}");
            ExitCode::from(3)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut g = Graph::new();
    parse_ntriples(&text, &mut g).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(g)
}

fn save_graph(g: &Graph, path: &str) -> Result<(), String> {
    std::fs::write(path, write_ntriples(g)).map_err(|e| format!("writing {path}: {e}"))
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let cmd = args.first().cloned().unwrap_or_default();
    let rest = &args[args.len().min(1)..];
    match cmd.as_str() {
        "materialize" => materialize(rest),
        "query" => query(rest).map_err(CliError::Usage),
        "partition" => partition_info(rest).map_err(CliError::Usage),
        "snapshot" => snapshot_cmd(rest).map_err(CliError::Usage),
        "restore" => restore(rest).map_err(CliError::Usage),
        "gen" => gen(rest).map_err(CliError::Usage),
        _ => Err(CliError::Usage(format!(
            "usage: owlpar <materialize|query|partition|snapshot|restore|gen> ... (got '{cmd}')"
        ))),
    }
}

fn materialize(args: &[String]) -> Result<(), CliError> {
    let [input, output, ..] = args else {
        return Err("materialize needs <in.nt> <out.nt>".into());
    };
    let k: usize = flag_value(args, "--k")
        .map_or(Ok(2), |v| v.parse().map_err(|_| "--k".to_string()))?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("graph") => PartitioningStrategy::data_graph(),
        Some("hash") => PartitioningStrategy::data_hash(),
        Some("domain") => PartitioningStrategy::data_domain(),
        Some("rule") => PartitioningStrategy::rule(),
        Some("hybrid") => PartitioningStrategy::Hybrid {
            rule_groups: if k.is_multiple_of(2) { 2 } else { 1 },
        },
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    };
    let rounds = if args.iter().any(|a| a == "--async") {
        RoundMode::Async
    } else {
        RoundMode::Barrier
    };
    let mut cfg = ParallelConfig {
        k,
        strategy,
        rounds,
        ..ParallelConfig::default()
    }
    .forward();
    if let Some(spec) = flag_value(args, "--fault-plan") {
        let plan = FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?;
        cfg = cfg.with_faults(plan);
    }
    let mut g = load_graph(input)?;
    let before = g.len();
    let report = run_parallel(&mut g, &cfg)?;
    save_graph(&g, output)?;
    // The one-line run summary includes the skipped-message count, so a
    // lossy-but-recovered run is visible at a glance.
    println!("{before} base triples -> {} total: {}", g.len(), report.summary());
    if report.recovered {
        for e in &report.worker_errors {
            eprintln!("owlpar: recovered from: {e}");
        }
        eprintln!(
            "owlpar: {} worker(s) lost; closure re-derived serially (still exact)",
            report.worker_errors.len()
        );
    }
    if report.total_skipped() > 0 {
        eprintln!(
            "owlpar: {} corrupted/foreign message(s) skipped with a report",
            report.total_skipped()
        );
    }
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let [input, sparql, ..] = args else {
        return Err("query needs <kb.nt> '<SPARQL>'".into());
    };
    let mut g = load_graph(input)?;
    let q = parse_query(sparql, &mut g.dict).map_err(|e| e.to_string())?;
    let rows = execute(&g.store, &q);
    println!("{}", q.projected_names().join("\t"));
    for row in &rows {
        println!("{}", render_row(&g.dict, row).join("\t"));
    }
    eprintln!("{} row(s)", rows.len());
    Ok(())
}

fn partition_info(args: &[String]) -> Result<(), String> {
    let [input, ..] = args else {
        return Err("partition needs <in.nt>".into());
    };
    let k: usize = flag_value(args, "--k").map_or(Ok(4), |v| v.parse().map_err(|_| "--k"))?;
    let mut g = load_graph(input)?;
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    let rdf_type = g.dict.id(&Term::iri(RDF_TYPE));
    println!(
        "schema {} / instance {} triples, {} compiled rules",
        hr.schema_triples.len(),
        hr.instance_triples.len(),
        hr.rules().len()
    );
    for (name, policy) in [
        ("graph", OwnershipPolicy::Graph(PartitionOptions::default())),
        ("domain", OwnershipPolicy::Domain(None)),
        ("hash", OwnershipPolicy::Hash { seed: 1 }),
    ] {
        let dp = partition_data(&hr.instance_triples, &g.dict, rdf_type, k, &policy);
        let q = quality(&dp.parts, rdf_type);
        println!(
            "{name:>6}: bal {:>9.1}  IR {:.3}  cut {:?}  time {:.3}s",
            q.bal,
            q.ir_excess(),
            dp.edge_cut,
            dp.partition_time.as_secs_f64()
        );
    }
    Ok(())
}

fn snapshot_cmd(args: &[String]) -> Result<(), String> {
    let [input, output, ..] = args else {
        return Err("snapshot needs <in.nt> <out.owlpar>".into());
    };
    let g = load_graph(input)?;
    let mut f = std::fs::File::create(output).map_err(|e| e.to_string())?;
    snapshot::save(&g, &mut f).map_err(|e| e.to_string())?;
    println!("wrote {} ({} triples, {} terms)", output, g.len(), g.dict.len());
    Ok(())
}

fn restore(args: &[String]) -> Result<(), String> {
    let [input, output, ..] = args else {
        return Err("restore needs <in.owlpar> <out.nt>".into());
    };
    let mut f = std::fs::File::open(input).map_err(|e| e.to_string())?;
    let g = snapshot::load(&mut f).map_err(|e| e.to_string())?;
    save_graph(&g, output)?;
    println!("restored {} triples", g.len());
    Ok(())
}

fn gen(args: &[String]) -> Result<(), String> {
    let [which, output, ..] = args else {
        return Err("gen needs <lubm|uobm|mdc> <out.nt>".into());
    };
    let universities: usize =
        flag_value(args, "--universities").map_or(Ok(2), |v| v.parse().map_err(|_| "--universities"))?;
    let scale: f64 = flag_value(args, "--scale").map_or(Ok(0.1), |v| v.parse().map_err(|_| "--scale"))?;
    let g = match which.as_str() {
        "lubm" => generate_lubm(&LubmConfig {
            universities,
            scale,
            seed: 42,
        }),
        "uobm" => generate_uobm(&UobmConfig {
            lubm: LubmConfig {
                universities,
                scale,
                seed: 42,
            },
            ..UobmConfig::default()
        }),
        "mdc" => generate_mdc(&MdcConfig::default()),
        other => return Err(format!("unknown generator '{other}'")),
    };
    save_graph(&g, output)?;
    println!("generated {} triples into {output}", g.len());
    Ok(())
}
