//! # owlpar — Parallel Inferencing for OWL Knowledge Bases
//!
//! A from-scratch Rust reproduction of Soma & Prasanna, *Parallel
//! Inferencing for OWL Knowledge Bases*, ICPP 2008: rule-based OWL-Horst
//! materialization parallelized by **data partitioning** (graph / hash /
//! domain-specific ownership) and **rule partitioning** (dependency-graph
//! cuts), executed by a round-based message-passing runtime.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`rdf`] — terms, dictionary encoding, indexed triple store, N-Triples;
//! * [`datalog`] — the rule engine (semi-naive forward and tabled-SLD
//!   backward chaining);
//! * [`lint`] — static partition-safety verification and rule-base
//!   analysis with a deny/warn diagnostics framework;
//! * [`horst`] — OWL-Horst TBox extraction and ontology→rule compilation;
//! * [`partition`] — the multilevel graph partitioner and the paper's
//!   partitioning algorithms and metrics;
//! * [`core`] — the parallel reasoner (Algorithm 3) and performance model;
//! * [`datagen`] — LUBM / UOBM-like / MDC-like benchmark generators;
//! * [`query`] — a SPARQL-lite engine over materialized KBs, with the
//!   LUBM query mix;
//! * [`serve`] — a concurrent KB server: epoch-published snapshots,
//!   incremental delta-closure inserts, framed TCP protocol;
//! * [`net`] — the TCP cluster runtime: a loopback mesh transport that
//!   plugs into [`core`]'s fabric, and a master/worker multi-process
//!   protocol that ships partitions over the wire (`owlpar-cluster`);
//! * [`obs`] — zero-dependency tracing and phase metrics: per-lane span
//!   recording, Chrome-trace / Prometheus exporters, and the cluster
//!   telemetry merge (`owlpar trace summary`).
//!
//! ## Quickstart
//!
//! ```
//! use owlpar::prelude::*;
//!
//! // A small LUBM universe (schema + instance triples).
//! let mut graph = generate_lubm(&LubmConfig::mini(2));
//!
//! // Materialize it on 4 workers with min-cut data partitioning.
//! let report = run_parallel(
//!     &mut graph,
//!     &ParallelConfig { k: 4, ..ParallelConfig::default() }.forward(),
//! ).expect("clean run");
//! assert!(report.derived > 0);
//! println!("closure: {} triples, {} derived", graph.len(), report.derived);
//! ```

#![forbid(unsafe_code)]

pub use owlpar_core as core;
pub use owlpar_datagen as datagen;
pub use owlpar_obs as obs;
pub use owlpar_datalog as datalog;
pub use owlpar_horst as horst;
pub use owlpar_lint as lint;
pub use owlpar_net as net;
pub use owlpar_partition as partition;
pub use owlpar_query as query;
pub use owlpar_rdf as rdf;
pub use owlpar_serve as serve;

/// One-stop imports for applications.
pub mod prelude {
    pub use owlpar_core::{
        run_parallel, run_serial, CommMode, CommError, FaultKind, FaultPlan, FaultRecovery,
        ParallelConfig, PartitioningStrategy, RunError, RunReport, WireFormat, WorkerError,
    };
    pub use owlpar_datagen::{
        generate_lubm, generate_mdc, generate_uobm, LubmConfig, MdcConfig, UobmConfig,
    };
    pub use owlpar_datalog::{MaterializationStrategy, Reasoner};
    pub use owlpar_horst::{CompileOptions, HorstReasoner};
    pub use owlpar_lint::{lint_parsed, lint_rules, LintOptions, LintReport, PartitionContext};
    pub use owlpar_partition::{partition_data, partition_rules, OwnershipPolicy};
    pub use owlpar_query::{ask, execute, parse_query, parse_query_frozen};
    pub use owlpar_rdf::{parse_ntriples, write_ntriples, Graph, Term, Triple};
    pub use owlpar_serve::{ServeError, ServingKb};
}
