//! Property-based tests of Algorithm 1's invariants on random instance
//! graphs, plus the single-join completeness property the paper's
//! correctness argument rests on.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::partition::data::Destinations;
use owlpar::partition::multilevel::PartitionOptions;
use owlpar::prelude::*;
use owlpar::rdf::{Dictionary, NodeId};
use proptest::prelude::*;

fn triples_strategy(
    max_node: u32,
    max_pred: u32,
    max_len: usize,
) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (0..max_node, 0..max_pred, 0..max_node)
            .prop_map(|(s, p, o)| Triple::new(NodeId(s), NodeId(1000 + p), NodeId(o))),
        1..max_len,
    )
}

fn policies() -> Vec<(&'static str, OwnershipPolicy<'static>)> {
    vec![
        (
            "graph",
            OwnershipPolicy::Graph(PartitionOptions {
                seed: 7,
                ..PartitionOptions::default()
            }),
        ),
        ("hash", OwnershipPolicy::Hash { seed: 3 }),
        ("domain", OwnershipPolicy::Domain(None)),
        ("streaming", OwnershipPolicy::Streaming),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every triple lands on the owner of its subject and of its object,
    /// appears in one or two partitions, and the union reproduces the
    /// input exactly.
    #[test]
    fn algorithm1_invariants(triples in triples_strategy(60, 5, 120), k in 1usize..6) {
        let dict = Dictionary::new();
        for (name, policy) in policies() {
            let dp = partition_data(&triples, &dict, None, k, &policy);

            // ownership is total over subject/object nodes
            for t in &triples {
                prop_assert!(dp.owner_of(t.s).is_some(), "{name}: subject unowned");
                prop_assert!(dp.owner_of(t.o).is_some(), "{name}: object unowned");
                let copies = dp.parts.iter().filter(|p| p.contains(t)).count();
                prop_assert!((1..=2).contains(&copies), "{name}: {copies} copies");
                // present exactly at the owners
                for owner in [dp.owner_of(t.s).unwrap(), dp.owner_of(t.o).unwrap()] {
                    prop_assert!(dp.parts[owner as usize].contains(t), "{name}");
                }
                match dp.destinations(t) {
                    Destinations::Two(a, b) => prop_assert_ne!(a, b),
                    Destinations::One(_) => {}
                    Destinations::None => prop_assert!(false, "instance triple unroutable"),
                }
            }

            // union == input
            let mut union: Vec<Triple> = dp.parts.iter().flatten().copied().collect();
            union.sort_unstable();
            union.dedup();
            let mut input = triples.clone();
            input.sort_unstable();
            input.dedup();
            prop_assert_eq!(union, input, "{} union mismatch", name);
        }
    }

    /// The single-join completeness property: for ANY two triples that
    /// share a node (i.e. could join under a single-join rule), some
    /// partition holds both.
    #[test]
    fn joinable_pairs_colocated(triples in triples_strategy(40, 3, 80), k in 2usize..5) {
        let dict = Dictionary::new();
        for (name, policy) in policies() {
            let dp = partition_data(&triples, &dict, None, k, &policy);
            for a in &triples {
                for b in &triples {
                    let share = a.s == b.s || a.s == b.o || a.o == b.s || a.o == b.o;
                    if !share {
                        continue;
                    }
                    let colocated = dp
                        .parts
                        .iter()
                        .any(|p| p.contains(a) && p.contains(b));
                    prop_assert!(
                        colocated,
                        "{name}: joinable {a} / {b} never co-located"
                    );
                }
            }
        }
    }

    /// Graph-policy balance: partition node counts stay within a loose
    /// factor of the mean (the partitioner's epsilon plus replication).
    #[test]
    fn graph_policy_balances(triples in triples_strategy(200, 4, 400), k in 2usize..5) {
        let dict = Dictionary::new();
        let policy = OwnershipPolicy::Graph(PartitionOptions::default());
        let dp = partition_data(&triples, &dict, None, k, &policy);
        let mut owned = vec![0usize; k];
        for (_, &p) in dp.owner.iter() {
            owned[p as usize] += 1;
        }
        let total: usize = owned.len();
        prop_assert_eq!(total, k);
        let n: usize = owned.iter().sum();
        let target = n as f64 / k as f64;
        for &o in &owned {
            prop_assert!(
                (o as f64) <= target * 1.6 + 2.0,
                "owned {owned:?} vs target {target}"
            );
        }
    }
}

/// A deterministic worst case: a path graph must not split joinable pairs.
#[test]
fn path_graph_pairs_colocated_under_graph_policy() {
    let triples: Vec<Triple> = (0..50)
        .map(|i| Triple::new(NodeId(i), NodeId(1000), NodeId(i + 1)))
        .collect();
    let dict = Dictionary::new();
    let dp = partition_data(
        &triples,
        &dict,
        None,
        4,
        &OwnershipPolicy::Graph(PartitionOptions::default()),
    );
    for w in triples.windows(2) {
        let colocated = dp.parts.iter().any(|p| p.contains(&w[0]) && p.contains(&w[1]));
        assert!(colocated, "adjacent path triples split: {} {}", w[0], w[1]);
    }
}
