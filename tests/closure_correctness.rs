//! Cross-crate correctness: the parallel closure must equal the serial
//! closure — the paper's soundness/completeness claim for single-join
//! rules — for every partitioning strategy, policy, engine and transport.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::datalog::backward::TableScope;
use owlpar::prelude::*;

fn serial_fingerprint(g0: &Graph) -> (u64, usize) {
    let mut g = g0.clone();
    run_serial(&mut g, MaterializationStrategy::ForwardSemiNaive);
    (g.term_fingerprint(), g.len())
}

fn check(g0: &Graph, cfg: &ParallelConfig, label: &str) {
    let (fp, len) = serial_fingerprint(g0);
    let mut g = g0.clone();
    let report = run_parallel(&mut g, cfg).expect("clean run");
    assert_eq!(g.len(), len, "{label}: closure size");
    assert_eq!(g.term_fingerprint(), fp, "{label}: closure content");
    assert_eq!(report.closure_size, len, "{label}: reported size");
}

#[test]
fn all_strategies_on_lubm() {
    let g = generate_lubm(&LubmConfig::mini(2));
    for (label, strategy) in [
        ("graph", PartitioningStrategy::data_graph()),
        ("hash", PartitioningStrategy::data_hash()),
        ("domain", PartitioningStrategy::data_domain()),
        ("rule", PartitioningStrategy::rule()),
        ("rule-weighted", PartitioningStrategy::Rule { weighted: true }),
    ] {
        let cfg = ParallelConfig {
            k: 3,
            strategy,
            ..ParallelConfig::default()
        }
        .forward();
        check(&g, &cfg, label);
    }
}

#[test]
fn all_engines_on_mdc() {
    let g = generate_mdc(&MdcConfig::mini());
    for (label, m) in [
        ("forward", MaterializationStrategy::ForwardSemiNaive),
        (
            "backward",
            MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
        ),
        (
            "backward-sweep",
            MaterializationStrategy::BackwardPerResource(TableScope::PerSweep),
        ),
        (
            "jena",
            MaterializationStrategy::BackwardJena(TableScope::PerQuery),
        ),
    ] {
        let cfg = ParallelConfig {
            k: 2,
            materialization: m,
            ..ParallelConfig::default()
        };
        check(&g, &cfg, label);
    }
}

#[test]
fn k_sweep_on_uobm() {
    let g = generate_uobm(&UobmConfig::mini(2));
    for k in [1, 2, 3, 5, 8] {
        let cfg = ParallelConfig {
            k,
            ..ParallelConfig::default()
        }
        .forward();
        check(&g, &cfg, &format!("uobm k={k}"));
    }
}

#[test]
fn file_transport_binary_and_text() {
    let g = generate_lubm(&LubmConfig::mini(2));
    for format in [WireFormat::Binary, WireFormat::NTriples] {
        let cfg = ParallelConfig {
            k: 3,
            comm: CommMode::SharedFile { dir: None, format },
            ..ParallelConfig::default()
        }
        .forward();
        check(&g, &cfg, &format!("file-{format:?}"));
    }
}

#[test]
fn parallel_run_is_idempotent() {
    let mut g = generate_lubm(&LubmConfig::mini(1));
    let cfg = ParallelConfig::default().forward();
    let first = run_parallel(&mut g, &cfg).expect("clean run");
    assert!(first.derived > 0);
    let second = run_parallel(&mut g, &cfg).expect("clean run");
    assert_eq!(second.derived, 0, "closure is a fixpoint");
}

#[test]
fn serial_engines_agree_on_all_generators() {
    for g0 in [
        generate_lubm(&LubmConfig::mini(2)),
        generate_uobm(&UobmConfig::mini(2)),
        generate_mdc(&MdcConfig::mini()),
    ] {
        let mut a = g0.clone();
        run_serial(&mut a, MaterializationStrategy::ForwardSemiNaive);
        let mut b = g0.clone();
        run_serial(
            &mut b,
            MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
        );
        let mut c = g0.clone();
        run_serial(
            &mut c,
            MaterializationStrategy::BackwardJena(TableScope::PerQuery),
        );
        assert_eq!(a.term_fingerprint(), b.term_fingerprint());
        assert_eq!(a.term_fingerprint(), c.term_fingerprint());
    }
}
