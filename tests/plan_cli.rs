//! End-to-end tests of the `owlpar plan` CLI: auto strategy selection
//! on a real KB, the deny-level refusal path (exit 3), and the contract
//! that `owlpar lint --json` and `owlpar plan --json` emit diagnostics
//! under **one** shared schema.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use serde_json::Value;
use std::collections::BTreeSet;
use std::process::Command;

fn owlpar_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_owlpar"))
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// The one diagnostic shape both subcommands promise
/// (`owlpar_lint::render::diagnostic_json`).
fn diagnostic_keys() -> BTreeSet<String> {
    [
        "code",
        "title",
        "severity",
        "context",
        "rule",
        "rule_index",
        "message",
        "violation",
        "witness",
        "suppressed",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn keys_of(diag: &Value) -> BTreeSet<String> {
    diag.as_object()
        .expect("diagnostic is an object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

fn json_stdout(out: std::process::Output) -> Value {
    let stdout = String::from_utf8(out.stdout).unwrap();
    serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"))
}

#[test]
fn lint_json_and_plan_json_share_one_diagnostic_schema() {
    // Lint diagnostics for the multi-join fixture (exit 3, OWL001...).
    let lint = owlpar_bin()
        .args(["lint", &fixture("multijoin.rules"), "--json"])
        .output()
        .expect("owlpar runs");
    let lint_doc = json_stdout(lint);
    let lint_diags = lint_doc["diagnostics"].as_array().unwrap();
    assert!(!lint_diags.is_empty(), "lint found nothing to report");

    // Plan diagnostics for the same fixture under rule partitioning at a
    // skewed k (exit 3, OWL015 idle-majority among them).
    let plan = owlpar_bin()
        .args([
            "plan",
            &fixture("multijoin.rules"),
            "--strategy",
            "rule",
            "--k",
            "8",
            "--json",
        ])
        .output()
        .expect("owlpar runs");
    assert_eq!(plan.status.code(), Some(3), "skewed plan must be refused");
    let plan_doc = json_stdout(plan);
    let plan_diags: Vec<&Value> = plan_doc["strategies"]
        .as_array()
        .unwrap()
        .iter()
        .flat_map(|s| s["diagnostics"].as_array().unwrap())
        .collect();
    assert!(!plan_diags.is_empty(), "plan found nothing to report");

    // Round-trip: every diagnostic either tool ever emits has exactly
    // the same key set, so downstream tooling parses both with a single
    // schema.
    let want = diagnostic_keys();
    for d in lint_diags {
        assert_eq!(keys_of(d), want, "lint diagnostic drifted: {d}");
    }
    for d in &plan_diags {
        assert_eq!(keys_of(d), want, "plan diagnostic drifted: {d}");
    }
}

#[test]
fn plan_auto_selects_the_argmin_cost_deny_free_strategy() {
    // Build a small KB through the CLI itself, as a user would.
    let dir = std::env::temp_dir().join(format!("owlpar-plan-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let kb = dir.join("lubm.nt");
    let gen = owlpar_bin()
        .args(["gen", "lubm", kb.to_str().unwrap(), "--universities", "1"])
        .output()
        .expect("owlpar runs");
    assert!(gen.status.success(), "gen failed");

    let out = owlpar_bin()
        .args(["plan", kb.to_str().unwrap(), "--strategy", "auto", "--k", "4", "--json"])
        .output()
        .expect("owlpar runs");
    assert_eq!(out.status.code(), Some(0), "auto plan must succeed");
    let doc = json_stdout(out);
    let chosen = doc["chosen"].as_str().expect("a strategy was chosen");

    // The chosen strategy is the cheapest among the deny-free candidates.
    let best = doc["strategies"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|s| s["summary"]["ok"].as_bool().unwrap())
        .min_by(|a, b| {
            let ca = a["plan"]["total_cost"].as_f64().unwrap();
            let cb = b["plan"]["total_cost"].as_f64().unwrap();
            ca.total_cmp(&cb)
        })
        .expect("at least one deny-free candidate");
    assert_eq!(best["plan"]["strategy"].as_str().unwrap(), chosen);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plan_auto_refuses_pathological_rulebase_with_exit_3() {
    let out = owlpar_bin()
        .args([
            "plan",
            &fixture("multijoin.rules"),
            "--strategy",
            "auto",
            "--k",
            "8",
            "--json",
        ])
        .output()
        .expect("owlpar runs");
    assert_eq!(out.status.code(), Some(3), "no deny-free candidate exists");
    let doc = json_stdout(out);
    assert!(doc["chosen"].is_null(), "nothing must be chosen: {doc}");
    let any_deny = doc["strategies"]
        .as_array()
        .unwrap()
        .iter()
        .flat_map(|s| s["diagnostics"].as_array().unwrap())
        .any(|d| d["severity"] == "deny");
    assert!(any_deny, "refusal must carry a deny diagnostic: {doc}");
}
