//! The full user workflow: generate → materialize in parallel → query.
//! Asserts the materialized KB answers the LUBM mix identically no matter
//! which partitioning strategy produced it.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::prelude::*;
use owlpar::query::lubm::queries;

fn close_with(g0: &Graph, strategy: PartitioningStrategy, k: usize) -> Graph {
    let mut g = g0.clone();
    run_parallel(
        &mut g,
        &ParallelConfig {
            k,
            strategy,
            ..ParallelConfig::default()
        }
        .forward(),
    )
    .expect("clean run");
    g
}

#[test]
fn query_answers_independent_of_partitioning() {
    let g0 = generate_lubm(&LubmConfig::mini(2));
    let mut closed: Vec<Graph> = vec![
        close_with(&g0, PartitioningStrategy::data_graph(), 3),
        close_with(&g0, PartitioningStrategy::data_hash(), 4),
        close_with(&g0, PartitioningStrategy::rule(), 2),
        close_with(&g0, PartitioningStrategy::Hybrid { rule_groups: 2 }, 4),
    ];
    for (name, _, src) in queries() {
        let counts: Vec<usize> = closed
            .iter_mut()
            .map(|g| {
                let q = parse_query(&src, &mut g.dict).expect("parses");
                execute(&g.store, &q).len()
            })
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{name}: answer counts differ across strategies: {counts:?}"
        );
    }
}

#[test]
fn ask_queries_on_materialized_kb() {
    let mut g = generate_lubm(&LubmConfig::mini(1));
    run_parallel(&mut g, &ParallelConfig::default().forward()).expect("clean run");
    let yes = parse_query(
        &format!(
            "{}ASK {{ ?x a ub:Person }}",
            owlpar::query::lubm::PREFIX
        ),
        &mut g.dict,
    )
    .unwrap();
    assert!(ask(&g.store, &yes), "inferred Person instances must exist");
    let no = parse_query(
        "ASK { ?x <http://nonexistent/prop> ?y }",
        &mut g.dict,
    )
    .unwrap();
    assert!(!ask(&g.store, &no));
}

#[test]
fn snapshot_of_materialized_kb_is_queryable() {
    let mut g = generate_lubm(&LubmConfig::mini(1));
    run_parallel(&mut g, &ParallelConfig::default().forward()).expect("clean run");

    let mut buf = Vec::new();
    owlpar::rdf::snapshot::save(&g, &mut buf).unwrap();
    let mut restored = owlpar::rdf::snapshot::load(&mut buf.as_slice()).unwrap();

    let src = format!("{}SELECT ?x WHERE {{ ?x a ub:Student }}", owlpar::query::lubm::PREFIX);
    let q1 = parse_query(&src, &mut g.dict).unwrap();
    let q2 = parse_query(&src, &mut restored.dict).unwrap();
    assert_eq!(
        execute(&g.store, &q1).len(),
        execute(&restored.store, &q2).len()
    );
}
