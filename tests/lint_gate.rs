//! End-to-end tests of the lint gate: the `owlpar lint` CLI (exit codes,
//! JSON diagnostics, suppression round-trip) and the master's refusal to
//! spawn workers over an unsafe rule-base.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::datalog::ast::build::{atom, c, v};
use owlpar::prelude::*;
use std::process::Command;

fn owlpar_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_owlpar"))
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn example(name: &str) -> String {
    format!("{}/examples/rules/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn cli_rejects_multi_join_rulebase_with_exit_3_and_json_diagnostic() {
    let out = owlpar_bin()
        .args(["lint", &fixture("multijoin.rules"), "--json"])
        .output()
        .expect("owlpar runs");
    assert_eq!(out.status.code(), Some(3), "deny findings must exit 3");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"code\":\"OWL001\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"deny\""), "{stdout}");
    assert!(stdout.contains("\"rule\":\"triangle\""), "{stdout}");
    assert!(stdout.contains("\"violation\":\"multi-join\""), "{stdout}");
    // The cross-product rule is flagged too.
    assert!(stdout.contains("\"code\":\"OWL002\""), "{stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
}

#[test]
fn cli_accepts_multi_join_rulebase_under_rule_partitioning_context() {
    let out = owlpar_bin()
        .args(["lint", &fixture("multijoin.rules"), "--context", "rule"])
        .output()
        .expect("owlpar runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "replication makes any join shape evaluable: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warn"), "still warned about: {stdout}");
}

#[test]
fn cli_passes_clean_rulebase_and_honours_suppression_annotation() {
    let out = owlpar_bin()
        .args(["lint", &example("family.rules")])
        .output()
        .expect("owlpar runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    // The duplicate-rule finding exists but is suppressed by the
    // `# lint: allow(OWL007)` annotation in the file.
    assert!(stdout.contains("OWL007"), "{stdout}");
    assert!(stdout.contains("(suppressed)"), "{stdout}");
    assert!(stdout.contains("0 deny, 0 warn, 1 suppressed"), "{stdout}");
    // Witnesses are named with the source variable names.
    assert!(stdout.contains("witness ?m"), "{stdout}");
    assert!(stdout.contains("witness ?p"), "{stdout}");
}

#[test]
fn cli_lints_compiled_horst_rulebase_clean_with_witnesses() {
    let out = owlpar_bin()
        .args(["lint", "--compiled", "--json"])
        .output()
        .expect("owlpar runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
    assert!(stdout.contains("\"deny\":0"), "{stdout}");
    // Every single-join rule carries a named locality witness: no
    // `"join_class":"single-join"` entry with a null witness.
    assert!(
        !stdout.contains("\"join_class\":\"single-join\",\"witness\":null"),
        "single-join rule without a witness: {stdout}"
    );
    assert!(stdout.contains("\"join_class\":\"single-join\""), "{stdout}");
}

#[test]
fn cli_reports_usage_error_without_input() {
    let out = owlpar_bin().args(["lint"]).output().expect("owlpar runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn master_refuses_unsafe_rulebase_before_spawning_workers() {
    let mut g = generate_lubm(&LubmConfig::mini(1));
    let p = g.intern(Term::iri("http://x/p"));
    let q = g.intern(Term::iri("http://x/q"));
    let triangle = owlpar::datalog::Rule::new(
        "triangle",
        atom(v(0), c(q), v(2)),
        vec![
            atom(v(0), c(p), v(1)),
            atom(v(1), c(p), v(2)),
            atom(v(2), c(p), v(0)),
        ],
    )
    .unwrap();
    let before = g.len();
    let cfg = ParallelConfig {
        k: 4,
        ..ParallelConfig::default()
    }
    .forward()
    .with_extra_rules(vec![triangle]);
    let err = run_parallel(&mut g, &cfg).unwrap_err();
    let RunError::Lint { report } = err else {
        panic!("expected a lint refusal, got: {err}");
    };
    assert!(report.has_deny());
    assert_eq!(report.unsafe_rule_names(), vec!["triangle".to_string()]);
    assert_eq!(g.len(), before, "refused before any worker touched the graph");
    // The rendered error names the lint code so operators can look it up.
    assert!(RunError::Lint { report }.to_string().contains("OWL001"));
}
