//! Differential testing of the three materialization engines on random
//! single-join rule sets and random data — forward semi-naive is the
//! oracle; both backward engines must agree with it.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::datalog::ast::build::{atom, c, v};
use owlpar::datalog::backward::{BackwardEngine, TableScope};
use owlpar::datalog::forward::forward_closure;
use owlpar::datalog::Rule;
use owlpar::rdf::{NodeId, Triple, TripleStore};
use proptest::prelude::*;

/// A random single-join rule over a small predicate alphabet.
fn rule_strategy(preds: u32) -> impl Strategy<Value = Rule> {
    let pred = move || 0..preds;
    prop_oneof![
        // transitive: p(x,y) p(y,z) -> p(x,z)
        pred().prop_map(|p| Rule::new(
            format!("trans{p}"),
            atom(v(0), c(NodeId(500 + p)), v(2)),
            vec![
                atom(v(0), c(NodeId(500 + p)), v(1)),
                atom(v(1), c(NodeId(500 + p)), v(2))
            ],
        )
        .unwrap()),
        // symmetric: p(x,y) -> p(y,x)
        pred().prop_map(|p| Rule::new(
            format!("sym{p}"),
            atom(v(1), c(NodeId(500 + p)), v(0)),
            vec![atom(v(0), c(NodeId(500 + p)), v(1))],
        )
        .unwrap()),
        // promotion: p(x,y) -> q(x,y)
        (pred(), pred()).prop_map(|(p, q)| Rule::new(
            format!("promote{p}_{q}"),
            atom(v(0), c(NodeId(500 + q)), v(1)),
            vec![atom(v(0), c(NodeId(500 + p)), v(1))],
        )
        .unwrap()),
        // inverse: p(x,y) -> q(y,x)
        (pred(), pred()).prop_map(|(p, q)| Rule::new(
            format!("inv{p}_{q}"),
            atom(v(1), c(NodeId(500 + q)), v(0)),
            vec![atom(v(0), c(NodeId(500 + p)), v(1))],
        )
        .unwrap()),
        // join-on-subject (functional flavor): p(x,y) p(x,z) -> q(y,z)
        (pred(), pred()).prop_map(|(p, q)| Rule::new(
            format!("fun{p}_{q}"),
            atom(v(1), c(NodeId(500 + q)), v(2)),
            vec![
                atom(v(0), c(NodeId(500 + p)), v(1)),
                atom(v(0), c(NodeId(500 + p)), v(2))
            ],
        )
        .unwrap()),
    ]
}

fn data_strategy(nodes: u32, preds: u32, len: usize) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (0..nodes, 0..preds, 0..nodes)
            .prop_map(|(s, p, o)| Triple::new(NodeId(s), NodeId(500 + p), NodeId(o))),
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_programs(
        rules in prop::collection::vec(rule_strategy(3), 1..5),
        data in data_strategy(12, 3, 30),
    ) {
        let mut fwd: TripleStore = data.iter().copied().collect();
        forward_closure(&mut fwd, &rules);

        let mut bwd: TripleStore = data.iter().copied().collect();
        BackwardEngine::new(&rules, TableScope::PerQuery).materialize(&mut bwd);
        prop_assert_eq!(fwd.iter_sorted(), bwd.iter_sorted(), "backward != forward");

        let mut sweep: TripleStore = data.iter().copied().collect();
        BackwardEngine::new(&rules, TableScope::PerSweep).materialize(&mut sweep);
        prop_assert_eq!(fwd.iter_sorted(), sweep.iter_sorted(), "per-sweep != forward");

        let mut jena: TripleStore = data.iter().copied().collect();
        BackwardEngine::new(&rules, TableScope::PerQuery).materialize_jena(&mut jena);
        prop_assert_eq!(fwd.iter_sorted(), jena.iter_sorted(), "jena != forward");
    }

    /// Incremental (delta) closure equals from-scratch closure when the
    /// base was closed first and the delta arrives later.
    #[test]
    fn incremental_equals_scratch(
        rules in prop::collection::vec(rule_strategy(3), 1..4),
        base in data_strategy(10, 3, 20),
        delta in data_strategy(10, 3, 8),
    ) {
        let mut scratch: TripleStore = base.iter().chain(delta.iter()).copied().collect();
        forward_closure(&mut scratch, &rules);

        let mut inc: TripleStore = base.iter().copied().collect();
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        eng.materialize(&mut inc);
        let fresh: Vec<Triple> = delta.iter().copied().filter(|t| inc.insert(*t)).collect();
        eng.materialize_delta(&mut inc, &fresh);
        prop_assert_eq!(scratch.iter_sorted(), inc.iter_sorted());
    }
}
