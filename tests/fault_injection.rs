//! Robustness suite: the parallel runtime under deterministic injected
//! faults.
//!
//! Invariants exercised here:
//!
//! * **transient faults are absorbed** — injected retryable IO errors and
//!   delivery delays/reorderings leave the closure bit-for-bit equal to
//!   the serial closure, on both transports;
//! * **worker loss is contained** — a panic at round r ≥ 1 ends the run
//!   with either a structured `RunError` (rule partitioning, or recovery
//!   disabled) or a *recovered* run whose closure equals the serial
//!   closure (data partitioning with `AdoptAndReclose`); never a hang,
//!   never a poisoned panic;
//! * **corruption is skipped with a report**, not a crash.
//!
//! Every test body runs under a wall-clock guard so a termination bug
//! fails the test instead of hanging the suite.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::prelude::*;
use owlpar::core::config::RoundMode;
use owlpar::core::WorkerError;
use std::time::Duration;

/// Run `f` on a helper thread; panic if it does not finish in time.
/// A hang is exactly the failure mode a broken barrier/termination
/// protocol produces, so the guard converts it into a test failure.
fn with_timeout<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    use std::sync::mpsc::RecvTimeoutError;
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(v) => {
            let _ = h.join();
            v
        }
        // Sender dropped without sending: the body panicked — re-raise
        // its payload so the test reports the real assertion failure.
        Err(RecvTimeoutError::Disconnected) => match h.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => panic!("test body exited without producing a result"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("test body exceeded the 120s timeout guard (hang?)")
        }
    }
}

fn serial_closure(mut g: Graph) -> (u64, usize) {
    run_serial(&mut g, MaterializationStrategy::ForwardSemiNaive);
    (g.term_fingerprint(), g.len())
}

fn base_cfg(k: usize) -> ParallelConfig {
    ParallelConfig {
        k,
        ..ParallelConfig::default()
    }
    .forward()
    // Longer than any legitimate wait under test-suite contention, but
    // below the 120s guard: a stranded worker surfaces as a structured
    // BarrierTimeout in the report rather than a guard panic.
    .with_round_timeout(Duration::from_secs(60))
}

/// Closure preserved under transient send/collect IO faults, file
/// transport: every injected failure is below the retry budget, so the
/// run must absorb them all and report the retries in the stats.
#[test]
fn transient_io_faults_preserve_closure_shared_file() {
    with_timeout(|| {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let (want_fp, want_len) = serial_closure(g0.clone());
        let plan = FaultPlan::new()
            .with(0, 0, FaultKind::SendIo { failures: 2 })
            .with(0, 2, FaultKind::CollectIo { failures: 2 })
            .with(1, 1, FaultKind::SendIo { failures: 3 })
            .with(1, 0, FaultKind::CollectIo { failures: 1 });
        let cfg = ParallelConfig {
            comm: CommMode::SharedFile {
                dir: None,
                format: WireFormat::NTriples,
            },
            ..base_cfg(3)
        }
        .with_faults(plan);
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &cfg).expect("transient faults absorbed");
        assert_eq!(g.len(), want_len, "closure size preserved");
        assert_eq!(g.term_fingerprint(), want_fp, "closure content preserved");
        assert!(report.worker_errors.is_empty());
        assert!(!report.recovered);
        let retries: usize = report.workers.iter().map(|w| w.io_retries).sum();
        assert!(retries >= 1, "injected failures went through the retry path");
    });
}

/// Same invariant on the channel transport (retry path is shared).
#[test]
fn transient_io_faults_preserve_closure_channel() {
    with_timeout(|| {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let (want_fp, want_len) = serial_closure(g0.clone());
        let plan = FaultPlan::new()
            .with(0, 0, FaultKind::SendIo { failures: 2 })
            .with(1, 1, FaultKind::SendIo { failures: 2 });
        let cfg = base_cfg(3).with_faults(plan);
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &cfg).expect("transient faults absorbed");
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
        assert!(report.worker_errors.is_empty());
    });
}

/// Delivery delays (and therefore reordering of arrivals across workers)
/// must not change the closure — the barrier protocol serializes rounds.
#[test]
fn delayed_and_reordered_delivery_preserves_closure() {
    with_timeout(|| {
        let g0 = generate_mdc(&MdcConfig::mini());
        let (want_fp, want_len) = serial_closure(g0.clone());
        let plan = FaultPlan::new()
            .with(0, 1, FaultKind::Delay { millis: 40 })
            .with(1, 3, FaultKind::Delay { millis: 25 })
            .with(2, 0, FaultKind::Delay { millis: 10 });
        let cfg = base_cfg(4).with_faults(plan);
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &cfg).expect("delays are not failures");
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
        assert!(report.worker_errors.is_empty());
    });
}

/// A scattered (seeded) plan of retryable faults across many coordinates:
/// deterministic, and still closure-preserving.
#[test]
fn scattered_transient_plan_preserves_closure() {
    with_timeout(|| {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let (want_fp, want_len) = serial_closure(g0.clone());
        let kinds = [
            FaultKind::SendIo { failures: 1 },
            FaultKind::CollectIo { failures: 1 },
            FaultKind::Delay { millis: 5 },
        ];
        let plan = FaultPlan::scattered(0xdecaf, 4, 3, &kinds, 9);
        let cfg = ParallelConfig {
            comm: CommMode::SharedFile {
                dir: None,
                format: WireFormat::Binary,
            },
            ..base_cfg(4)
        }
        .with_faults(plan);
        let mut g = g0.clone();
        run_parallel(&mut g, &cfg).expect("scattered transient faults absorbed");
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
    });
}

/// Tentpole guarantee: a worker panicking at round r ≥ 1 under data
/// partitioning yields a *recovered* run whose closure equals the serial
/// closure — the master adopts the dead worker's partition (still held in
/// the input graph) and re-closes.
#[test]
fn worker_panic_round1_data_recovers_exact_closure() {
    with_timeout(|| {
        let g0 = generate_mdc(&MdcConfig::mini());
        let (want_fp, want_len) = serial_closure(g0.clone());
        let cfg = base_cfg(4).with_faults(FaultPlan::new().with(1, 2, FaultKind::Panic));
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &cfg).expect("data partitioning recovers");
        assert!(report.recovered, "the panic must actually fire at round 1");
        assert!(report.worker_errors.iter().any(|e| matches!(
            e,
            WorkerError::Panicked { worker: 2, round: 1, .. }
        )));
        assert_eq!(report.workers.len(), 4, "lost worker keeps its stats slot");
        assert_eq!(g.len(), want_len, "recovered closure == serial closure");
        assert_eq!(g.term_fingerprint(), want_fp);
    });
}

/// Same crash over the file transport: survivors must not trip over the
/// dead worker's leftover message files.
#[test]
fn worker_panic_over_file_transport_recovers() {
    with_timeout(|| {
        let g0 = generate_mdc(&MdcConfig::mini());
        let (want_fp, want_len) = serial_closure(g0.clone());
        let cfg = ParallelConfig {
            comm: CommMode::SharedFile {
                dir: None,
                format: WireFormat::Binary,
            },
            ..base_cfg(4)
        }
        .with_faults(FaultPlan::new().with(1, 0, FaultKind::Panic));
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &cfg).expect("data partitioning recovers");
        assert!(report.recovered);
        assert_eq!(g.len(), want_len);
        assert_eq!(g.term_fingerprint(), want_fp);
    });
}

/// Rule partitioning cannot adopt a lost rule partition (no surviving
/// worker runs those rules), so a panic must surface as a structured
/// `RunError::Workers` — not a hang, not a poisoned panic.
#[test]
fn worker_panic_rule_strategy_is_structured_error() {
    with_timeout(|| {
        let mut g = generate_lubm(&LubmConfig::mini(2));
        let cfg = ParallelConfig {
            strategy: PartitioningStrategy::rule(),
            ..base_cfg(3)
        }
        // round 0 always runs, independent of how fast rule mode quiesces
        .with_faults(FaultPlan::new().with(0, 1, FaultKind::Panic));
        let err = run_parallel(&mut g, &cfg).expect_err("rule strategy cannot recover");
        match err {
            RunError::Workers { errors } => {
                assert!(errors.iter().any(|e| matches!(
                    e,
                    WorkerError::Panicked { worker: 1, round: 0, .. }
                )));
            }
            other => panic!("expected Workers error, got: {other}"),
        }
    });
}

/// With recovery disabled the same data-partitioned crash is reported
/// instead of repaired.
#[test]
fn recovery_disabled_reports_structured_error() {
    with_timeout(|| {
        let mut g = generate_mdc(&MdcConfig::mini());
        let cfg = base_cfg(4)
            .with_recovery(FaultRecovery::Fail)
            .with_faults(FaultPlan::new().with(1, 3, FaultKind::Panic));
        let err = run_parallel(&mut g, &cfg).expect_err("recovery disabled");
        assert!(matches!(err, RunError::Workers { .. }));
        assert!(err.to_string().contains("worker 3"));
    });
}

/// Corrupted payloads are skipped with a report; the run completes and
/// surfaces the skip counts instead of crashing on a decode error.
#[test]
fn corruption_is_skipped_and_reported() {
    with_timeout(|| {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let plan = FaultPlan::new()
            .with(0, 0, FaultKind::Corrupt { to: 1 })
            .with(0, 2, FaultKind::Truncate { to: 1 });
        let cfg = ParallelConfig {
            comm: CommMode::SharedFile {
                dir: None,
                format: WireFormat::NTriples,
            },
            ..base_cfg(3)
        }
        .with_faults(plan);
        let mut g = g0.clone();
        let report = run_parallel(&mut g, &cfg).expect("corruption does not kill the run");
        assert!(report.worker_errors.is_empty(), "no worker died");
        assert!(
            report.total_skipped() > 0,
            "dropped messages must be reported, not silent"
        );
    });
}

/// The asynchronous (§VI-B) mode has no barrier; a worker panic must
/// still terminate the run promptly — recovered (data partitioning) or
/// as a structured error, never a spin-forever.
#[test]
fn async_mode_worker_panic_terminates() {
    with_timeout(|| {
        let g0 = generate_mdc(&MdcConfig::mini());
        let (want_fp, want_len) = serial_closure(g0.clone());
        let cfg = ParallelConfig {
            rounds: RoundMode::Async,
            ..base_cfg(3)
        }
        .with_faults(FaultPlan::new().with(0, 1, FaultKind::Panic));
        let mut g = g0.clone();
        match run_parallel(&mut g, &cfg) {
            Ok(report) => {
                assert!(report.recovered, "a fired panic must be visible");
                assert_eq!(g.len(), want_len);
                assert_eq!(g.term_fingerprint(), want_fp);
            }
            Err(e) => assert!(matches!(e, RunError::Workers { .. })),
        }
    });
}

/// Determinism of the harness itself: the same seeded plan produces the
/// same outcome twice (same closure, same skip/retry profile).
#[test]
fn seeded_plans_are_reproducible() {
    with_timeout(|| {
        let g0 = generate_lubm(&LubmConfig::mini(2));
        let run = |g0: &Graph| {
            let plan = FaultPlan::scattered(
                7,
                3,
                2,
                &[FaultKind::SendIo { failures: 1 }, FaultKind::Delay { millis: 3 }],
                6,
            );
            let mut g = g0.clone();
            let report = run_parallel(&mut g, &base_cfg(3).with_faults(plan))
                .expect("transient plan");
            let retries: usize = report.workers.iter().map(|w| w.io_retries).sum();
            (g.term_fingerprint(), g.len(), retries)
        };
        let a = run(&g0);
        let b = run(&g0);
        assert_eq!(a, b, "same seed, same plan, same outcome");
    });
}
