//! End-to-end pipeline tests: N-Triples in → parallel materialization →
//! semantic spot checks → N-Triples out, the way a downstream user would
//! drive the library.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::datagen::lubm::university_iri;
use owlpar::datagen::ontology::univ;
use owlpar::prelude::*;
use owlpar::rdf::vocab::{RDF_TYPE, RDFS_SUBCLASSOF};
use owlpar::rdf::TriplePattern;

#[test]
fn ntriples_roundtrip_preserves_closure() {
    // generate → serialize → parse → materialize → compare with direct
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let text = write_ntriples(&g0);
    let mut parsed = Graph::new();
    let n = parse_ntriples(&text, &mut parsed).expect("own output parses");
    assert_eq!(n, g0.len());
    assert_eq!(parsed.term_fingerprint(), g0.term_fingerprint());

    let mut direct = g0.clone();
    run_serial(&mut direct, MaterializationStrategy::ForwardSemiNaive);
    let mut via_text = parsed;
    run_serial(&mut via_text, MaterializationStrategy::ForwardSemiNaive);
    assert_eq!(direct.term_fingerprint(), via_text.term_fingerprint());
}

#[test]
fn lubm_semantics_hold_after_parallel_run() {
    let mut g = generate_lubm(&LubmConfig::mini(2));
    run_parallel(
        &mut g,
        &ParallelConfig {
            k: 4,
            ..ParallelConfig::default()
        }
        .forward(),
    )
    .expect("clean run");

    let id = |iri: &str| g.dict.id(&Term::iri(iri)).expect("interned");
    let rdf_type = id(RDF_TYPE);

    // every GraduateStudent is also Student and Person (subclass chain)
    let grad = id(&univ("GraduateStudent"));
    let student = id(&univ("Student"));
    let person = id(&univ("Person"));
    let grads = g.matches(TriplePattern::new(None, Some(rdf_type), Some(grad)));
    assert!(!grads.is_empty());
    for t in &grads {
        assert!(g.store.contains(&Triple::new(t.s, rdf_type, student)));
        assert!(g.store.contains(&Triple::new(t.s, rdf_type, person)));
    }

    // subOrganizationOf is transitively closed: research groups reach
    // their university directly
    let sub_org = id(&univ("subOrganizationOf"));
    let group_cls = id(&univ("ResearchGroup"));
    let uni0 = id(&university_iri(0));
    let groups = g.matches(TriplePattern::new(None, Some(rdf_type), Some(group_cls)));
    assert!(!groups.is_empty());
    let reaching = groups
        .iter()
        .filter(|t| g.store.contains(&Triple::new(t.s, sub_org, uni0)))
        .count();
    assert!(reaching > 0, "some group must transitively reach university 0");

    // headOf ⊑ worksFor ⊑ memberOf: every head is a member
    let head_of = id(&univ("headOf"));
    let member_of = id(&univ("memberOf"));
    let heads = g.matches(TriplePattern::new(None, Some(head_of), None));
    assert!(!heads.is_empty());
    for t in &heads {
        assert!(
            g.store.contains(&Triple::new(t.s, member_of, t.o)),
            "head not lifted to memberOf"
        );
    }

    // degreeFrom / hasAlumnus inverse
    let degree_from = id(&univ("degreeFrom"));
    let has_alumnus = id(&univ("hasAlumnus"));
    let degrees = g.matches(TriplePattern::new(None, Some(degree_from), None));
    assert!(!degrees.is_empty());
    for t in degrees.iter().take(50) {
        assert!(g.store.contains(&Triple::new(t.o, has_alumnus, t.s)));
    }
}

#[test]
fn uobm_social_semantics_hold() {
    let mut g = generate_uobm(&UobmConfig::mini(2));
    run_parallel(
        &mut g,
        &ParallelConfig {
            k: 3,
            ..ParallelConfig::default()
        }
        .forward(),
    )
    .expect("clean run");
    let id = |iri: &str| g.dict.id(&Term::iri(iri)).expect("interned");
    let friend = id(&univ("isFriendOf"));
    let friends = g.matches(TriplePattern::new(None, Some(friend), None));
    assert!(!friends.is_empty());
    // symmetry closed
    for t in &friends {
        assert!(g.store.contains(&Triple::new(t.o, friend, t.s)));
    }
    // hasSameHomeTownWith is symmetric AND transitive: its closure equals
    // the union of per-component cliques (spot check symmetry here)
    let home = id(&univ("hasSameHomeTownWith"));
    for t in g.matches(TriplePattern::new(None, Some(home), None)) {
        assert!(g.store.contains(&Triple::new(t.o, home, t.s)));
    }
}

#[test]
fn schema_is_not_duplicated_or_lost() {
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let subclass = g0.dict.id(&Term::iri(RDFS_SUBCLASSOF)).unwrap();
    let schema_before = g0.matches(TriplePattern::new(None, Some(subclass), None)).len();
    let mut g = g0.clone();
    run_parallel(&mut g, &ParallelConfig::default().forward()).expect("clean run");
    let schema_after = g.matches(TriplePattern::new(None, Some(subclass), None)).len();
    // compiled rules never derive schema triples, and replication across
    // workers must collapse in the union
    assert_eq!(schema_before, schema_after);
}

#[test]
fn run_report_or_reflects_replication() {
    let g0 = generate_lubm(&LubmConfig::mini(2));
    let mut g_graph = g0.clone();
    let graph_report = run_parallel(
        &mut g_graph,
        &ParallelConfig {
            k: 4,
            strategy: PartitioningStrategy::data_graph(),
            ..ParallelConfig::default()
        }
        .forward(),
    )
    .expect("clean run");
    let mut g_hash = g0.clone();
    let hash_report = run_parallel(
        &mut g_hash,
        &ParallelConfig {
            k: 4,
            strategy: PartitioningStrategy::data_hash(),
            ..ParallelConfig::default()
        }
        .forward(),
    )
    .expect("clean run");
    let g_ir = graph_report.partition_quality.unwrap().ir_excess();
    let h_ir = hash_report.partition_quality.unwrap().ir_excess();
    assert!(
        g_ir < h_ir,
        "graph policy must replicate less than hash ({g_ir:.3} vs {h_ir:.3})"
    );
}
