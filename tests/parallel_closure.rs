//! Property suite for the in-node parallel closure: across random seeds,
//! rule mixes and thread counts, `parallel_closure` /
//! `parallel_closure_delta` must reach exactly the fixpoint the serial
//! semi-naive engine (`forward_closure`) computes. Derivation order may
//! differ — sorted stores are compared.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar::datalog::ast::build::{atom, c, v};
use owlpar::datalog::forward::{forward_closure, forward_closure_delta};
use owlpar::datalog::{parallel_closure, parallel_closure_delta, Rule};
use owlpar::prelude::*;
use owlpar::rdf::{NodeId, TripleStore};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic xorshift64* generator (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn t(s: u64, p: u64, o: u64) -> Triple {
    Triple::new(NodeId(s as u32), NodeId(p as u32), NodeId(o as u32))
}

const TYPE: u64 = 1;
const SUB_CLASS: u64 = 2;
const PART_OF: u64 = 3;
const CONNECTED: u64 = 4;
const MEMBER_OF: u64 = 5;
const HEAD_OF: u64 = 6;

/// A LUBM-flavoured single-join rule mix: class promotion along a
/// subclass hierarchy, a transitive `partOf`, and `headOf ⇒ memberOf`.
fn lubm_style_rules() -> Vec<Rule> {
    vec![
        // (x type c1) (c1 subClassOf c2) -> (x type c2)
        Rule::new(
            "subclass",
            atom(v(0), c(NodeId(TYPE as u32)), v(2)),
            vec![
                atom(v(0), c(NodeId(TYPE as u32)), v(1)),
                atom(v(1), c(NodeId(SUB_CLASS as u32)), v(2)),
            ],
        )
        .unwrap(),
        // partOf transitive
        Rule::new(
            "trans",
            atom(v(0), c(NodeId(PART_OF as u32)), v(2)),
            vec![
                atom(v(0), c(NodeId(PART_OF as u32)), v(1)),
                atom(v(1), c(NodeId(PART_OF as u32)), v(2)),
            ],
        )
        .unwrap(),
        // headOf ⇒ memberOf (subproperty)
        Rule::new(
            "subprop",
            atom(v(0), c(NodeId(MEMBER_OF as u32)), v(1)),
            vec![atom(v(0), c(NodeId(HEAD_OF as u32)), v(1))],
        )
        .unwrap(),
    ]
}

/// A cycle/cascade mix: `connected` is transitive *and* symmetric, so
/// random edges collapse into dense strongly-connected cliques — many
/// rounds, heavy duplicate generation across shards.
fn cycle_cascade_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            "trans",
            atom(v(0), c(NodeId(CONNECTED as u32)), v(2)),
            vec![
                atom(v(0), c(NodeId(CONNECTED as u32)), v(1)),
                atom(v(1), c(NodeId(CONNECTED as u32)), v(2)),
            ],
        )
        .unwrap(),
        Rule::new(
            "sym",
            atom(v(1), c(NodeId(CONNECTED as u32)), v(0)),
            vec![atom(v(0), c(NodeId(CONNECTED as u32)), v(1))],
        )
        .unwrap(),
        // connected things share parts: (x connected y)(y partOf z) -> (x partOf z)
        Rule::new(
            "cascade",
            atom(v(0), c(NodeId(PART_OF as u32)), v(2)),
            vec![
                atom(v(0), c(NodeId(CONNECTED as u32)), v(1)),
                atom(v(1), c(NodeId(PART_OF as u32)), v(2)),
            ],
        )
        .unwrap(),
    ]
}

fn lubm_style_facts(rng: &mut Rng) -> Vec<Triple> {
    let mut facts = Vec::new();
    // a random subclass chain/forest over 8 classes (ids 100..108)
    for cls in 101..108 {
        facts.push(t(cls, SUB_CLASS, 100 + rng.below(cls - 100)));
    }
    let n = 200 + rng.below(400);
    for _ in 0..n {
        let e = 1000 + rng.below(120);
        match rng.below(4) {
            0 => facts.push(t(e, TYPE, 100 + rng.below(8))),
            1 => facts.push(t(e, PART_OF, 1000 + rng.below(120))),
            2 => facts.push(t(e, HEAD_OF, 2000 + rng.below(10))),
            _ => facts.push(t(e, MEMBER_OF, 2000 + rng.below(10))),
        }
    }
    facts
}

fn cycle_cascade_facts(rng: &mut Rng) -> Vec<Triple> {
    let mut facts = Vec::new();
    let nodes = 20 + rng.below(20);
    let edges = 60 + rng.below(120);
    for _ in 0..edges {
        facts.push(t(
            1000 + rng.below(nodes),
            CONNECTED,
            1000 + rng.below(nodes),
        ));
    }
    for _ in 0..20 {
        facts.push(t(1000 + rng.below(nodes), PART_OF, 3000 + rng.below(8)));
    }
    facts
}

fn check_seed(seed: u64, rules: &[Rule], facts: Vec<Triple>) {
    let mut serial: TripleStore = facts.iter().copied().collect();
    let n_serial = forward_closure(&mut serial, rules);
    let oracle = serial.iter_sorted();

    for threads in THREADS {
        let mut par: TripleStore = facts.iter().copied().collect();
        let n_par = parallel_closure(&mut par, rules, threads);
        assert_eq!(
            par.iter_sorted(),
            oracle,
            "seed {seed} threads {threads}: parallel fixpoint diverged"
        );
        assert_eq!(
            n_par, n_serial,
            "seed {seed} threads {threads}: derived counts differ"
        );
    }
}

#[test]
fn thirty_seeds_lubm_style_mix() {
    for seed in 1..=30 {
        let mut rng = Rng::new(seed);
        let facts = lubm_style_facts(&mut rng);
        check_seed(seed, &lubm_style_rules(), facts);
    }
}

#[test]
fn thirty_seeds_cycle_cascade_mix() {
    for seed in 31..=60 {
        let mut rng = Rng::new(seed);
        let facts = cycle_cascade_facts(&mut rng);
        check_seed(seed, &cycle_cascade_rules(), facts);
    }
}

#[test]
fn delta_path_agrees_with_serial_delta_across_seeds() {
    for seed in 61..=75 {
        let mut rng = Rng::new(seed);
        let rules = lubm_style_rules();
        let facts = lubm_style_facts(&mut rng);
        let mut serial: TripleStore = facts.iter().copied().collect();
        forward_closure(&mut serial, &rules);
        let mut par = serial.clone();

        // a batch of fresh facts against the closed store
        let batch_raw = lubm_style_facts(&mut rng);
        let mut fresh_s = Vec::new();
        for &f in &batch_raw {
            if serial.insert(f) {
                fresh_s.push(f);
            }
        }
        let mut fresh_p = Vec::new();
        for &f in &batch_raw {
            if par.insert(f) {
                fresh_p.push(f);
            }
        }
        assert_eq!(fresh_s, fresh_p);

        let mut a = forward_closure_delta(&mut serial, &rules, fresh_s);
        let mut b = parallel_closure_delta(&mut par, &rules, fresh_p, 4);
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b, "seed {seed}: delta consequences diverged");
        assert_eq!(par.iter_sorted(), serial.iter_sorted(), "seed {seed}");
    }
}

#[test]
fn forward_parallel_strategy_on_generated_lubm() {
    // End-to-end: the ForwardParallel materialization strategy through
    // HorstReasoner on a real generated dataset equals ForwardSemiNaive.
    let g0 = generate_lubm(&LubmConfig::mini(1));

    let mut serial = g0.clone();
    let hr = HorstReasoner::from_graph(&mut serial, MaterializationStrategy::ForwardSemiNaive);
    hr.materialize(&mut serial);

    for threads in [0, 2, 4] {
        let mut par = g0.clone();
        let hr = HorstReasoner::from_graph(
            &mut par,
            MaterializationStrategy::ForwardParallel { threads },
        );
        hr.materialize(&mut par);
        assert_eq!(
            par.store.iter_sorted(),
            serial.store.iter_sorted(),
            "threads {threads}"
        );
    }
}

#[test]
fn run_parallel_workers_with_in_node_threads_match_serial() {
    // The cluster runtime with ForwardParallel workers (auto thread
    // split) still reproduces the serial closure.
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let mut serial = g0.clone();
    run_serial(&mut serial, MaterializationStrategy::ForwardSemiNaive);

    let mut par = g0.clone();
    let cfg = ParallelConfig {
        k: 2,
        ..ParallelConfig::default()
    }
    .forward_parallel(0);
    run_parallel(&mut par, &cfg).expect("clean run");
    assert_eq!(par.term_fingerprint(), serial.term_fingerprint());
    assert_eq!(par.len(), serial.len());
}
