//! Minimal offline stand-in for `serde`.
//!
//! Instead of the full visitor-based data model, `Serialize` renders
//! straight to an owned JSON [`json_value::Value`]; `serde_json`'s stub
//! re-exports that type and serializes it. `Deserialize` is derive-only
//! in this workspace (nothing ever parses), so it is a marker trait.

pub use serde_derive::{Deserialize, Serialize};

pub mod json_value {
    use std::fmt;

    /// An owned JSON document.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    /// Shared `Null` for out-of-range [`std::ops::Index`] lookups, as in
    /// real `serde_json`.
    const NULL: Value = Value::Null;

    impl Value {
        /// Object member lookup (first match; stub objects are ordered
        /// pairs, duplicates never occur in practice).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => {
                    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The object's ordered `(key, value)` pairs. Real `serde_json`
        /// returns a `Map`; the stub keeps the underlying vec.
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::I64(n) => Some(*n as f64),
                Value::U64(n) => Some(*n as f64),
                Value::F64(x) => Some(*x),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::U64(n) => Some(*n),
                Value::I64(n) => u64::try_from(*n).ok(),
                _ => None,
            }
        }

        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, i: usize) -> &Value {
            match self {
                Value::Array(items) => items.get(i).unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            matches!(self, Value::Str(s) if s == other)
        }
    }

    impl PartialEq<Value> for &str {
        fn eq(&self, other: &Value) -> bool {
            other == self
        }
    }

    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        f.write_str("\"")?;
        for c in s.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::I64(n) => write!(f, "{n}"),
                Value::U64(n) => write!(f, "{n}"),
                Value::F64(x) if x.is_finite() => write!(f, "{x}"),
                Value::F64(_) => f.write_str("null"),
                Value::Str(s) => write_escaped(f, s),
                Value::Array(items) => {
                    f.write_str("[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str("]")
                }
                Value::Object(fields) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write_escaped(f, k)?;
                        f.write_str(":")?;
                        write!(f, "{v}")?;
                    }
                    f.write_str("}")
                }
            }
        }
    }
}

use json_value::Value;

/// Render `self` as a JSON value. The derive macro implements this for
/// named/tuple structs field-by-field and for enums via their `Debug`
/// rendering (no enum in this workspace is ever serialized for real).
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Marker: derived but never exercised in this workspace.
pub trait Deserialize<'de>: Sized {}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
