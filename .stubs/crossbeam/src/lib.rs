//! Minimal offline stand-in for `crossbeam`, built on std primitives:
//! `crossbeam::thread::scope` maps onto `std::thread::scope`, and
//! `crossbeam::channel` wraps `std::sync::mpsc` (unbounded only).

pub mod thread {
    use std::any::Any;

    /// Transparent wrapper around [`std::thread::Scope`] exposing
    /// crossbeam's shape (`spawn` closures receive a scope argument,
    /// which callers may ignore or use for nested spawns).
    #[repr(transparent)]
    pub struct Scope<'scope, 'env: 'scope>(std::thread::Scope<'scope, 'env>);

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.0.spawn(move || f(self)),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unlike crossbeam we never return `Err`: joined child
    /// panics are surfaced through each `join()` result, and `f`'s own
    /// panics propagate.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            // SAFETY: Scope is repr(transparent) over std::thread::Scope,
            // so casting the reference only relabels the type.
            let wrapper = unsafe {
                &*(s as *const std::thread::Scope<'_, 'env> as *const Scope<'_, 'env>)
            };
            f(wrapper)
        }))
    }
}

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_channels_deliver() {
        let (s, r) = crate::channel::unbounded();
        let ok = crate::thread::scope(|scope| {
            let h = scope.spawn(move |_| {
                s.send(41usize).unwrap();
                1usize
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(ok + r.recv().unwrap(), 42);
        assert!(matches!(
            r.try_recv(),
            Err(crate::channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn joined_child_panic_is_reported_not_propagated() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }
}
