//! Minimal offline stand-in for `serde_json`: re-exports the serde stub's
//! JSON [`Value`], a `json!` macro covering the literal shapes the bench
//! bins use (flat objects, arrays, scalars), and `to_string`.

use std::fmt;

pub use serde::json_value::Value;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any `Serialize` value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_string())
}

/// Convert any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

#[doc(hidden)]
pub fn __value_of<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__value_of(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::__value_of(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::__value_of(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn object_renders_compact_json() {
        let v = json!({"k": 4usize, "x": 1.5f64, "name": "a\"b", "none": (None::<u32>)});
        assert_eq!(
            v.to_string(),
            r#"{"k":4,"x":1.5,"name":"a\"b","none":null}"#
        );
        let arr = json!([1u32, 2u32]);
        assert_eq!(arr.to_string(), "[1,2]");
        assert_eq!(json!(null).to_string(), "null");
    }
}
