//! Minimal offline stand-in for `serde_json`: re-exports the serde stub's
//! JSON [`Value`], a `json!` macro covering the literal shapes the bench
//! bins use (flat objects, arrays, scalars), `to_string`, and a
//! [`from_str`] parser for tests that round-trip CLI JSON output.

use std::fmt;

pub use serde::json_value::Value;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any `Serialize` value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_string())
}

/// Convert any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Parse a JSON document into a [`Value`] tree. Recursive descent over
/// the full grammar (escapes, nested containers, all number shapes);
/// trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T> {
        Err(Error(format!("{what} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or(Error("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs never appear in owlpar's
                            // own output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("bad utf8".into()))?;
                    let c = s.chars().next().ok_or(Error("bad utf8".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::F64(x)),
            Err(_) => self.err("bad number"),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

#[doc(hidden)]
pub fn __value_of<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__value_of(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::__value_of(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::__value_of(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn object_renders_compact_json() {
        let v = json!({"k": 4usize, "x": 1.5f64, "name": "a\"b", "none": (None::<u32>)});
        assert_eq!(
            v.to_string(),
            r#"{"k":4,"x":1.5,"name":"a\"b","none":null}"#
        );
        let arr = json!([1u32, 2u32]);
        assert_eq!(arr.to_string(), "[1,2]");
        assert_eq!(json!(null).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let text = r#"{"k":4,"x":1.5,"name":"a\"b","none":null,"neg":-7,
                       "arr":[true,false,{"inner":[]}]}"#;
        let v = crate::from_str(text).unwrap();
        let back = crate::from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["k"].as_u64(), Some(4));
        assert_eq!(v["name"].as_str(), Some("a\"b"));
        assert!(v["none"].is_null());
        assert_eq!(v["arr"][0].as_bool(), Some(true));
        assert!(v["arr"][2]["inner"].as_array().unwrap().is_empty());
        assert!(crate::from_str("[1,2] junk").is_err());
    }
}
