//! Minimal offline stand-in for the `bytes` crate: just the little-endian
//! cursor traits the triple wire format uses.

/// Read side of a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write side of a byte cursor.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_le() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(7);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.remaining(), 8);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u32_le(), 7);
        assert_eq!(rd.remaining(), 0);
    }
}
