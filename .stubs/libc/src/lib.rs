//! Minimal offline stand-in for the `libc` crate.
//!
//! The workspace builds hermetically (no registry access), so external
//! dependencies are vendored as API-compatible stubs under `.stubs/`.
//! This one declares exactly the clock symbols `owlpar-core::cputime`
//! binds; they link against the system C library.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

/// Per-thread CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
/// Monotonic clock (Linux value).
pub const CLOCK_MONOTONIC: clockid_t = 1;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}
