//! Minimal offline stand-in for `proptest`.
//!
//! Same surface, simpler engine: each `#[test]` inside `proptest!` runs
//! `config.cases` deterministic cases (seeded from the test's module
//! path, so runs are reproducible), sampling every argument strategy
//! with a splitmix64 stream. There is no shrinking — a failing case
//! reports its number and message and panics immediately.

use std::fmt;

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test identity and case index so every case draws an
    /// independent, reproducible stream.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A failed property; `prop_assert*` return this through the case body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    /// Number of cases per property (no other knobs are honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A sampleable value source. Upstream proptest separates strategies
    /// from value trees to support shrinking; without shrinking a
    /// strategy is just a sampling function.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always the same value (`Just` in upstream terms).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed arms; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        pub fn push<S>(&mut self, strat: S)
        where
            S: Strategy<Value = T> + 'static,
        {
            self.arms.push(Box::new(move |rng| strat.sample(rng)));
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// One parsed piece of a string pattern: a set of candidate chars and
    /// a repetition range.
    struct PatternAtom {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out = Vec::new();
        loop {
            match chars.next() {
                None | Some(']') => break,
                Some('\\') => {
                    if let Some(esc) = chars.next() {
                        out.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        });
                    }
                }
                Some(c) => {
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // the '-'
                        match ahead.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                chars.next();
                                for x in c..=hi {
                                    out.push(x);
                                }
                                continue;
                            }
                            _ => {}
                        }
                    }
                    out.push(c);
                }
            }
        }
        out
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let parts: Vec<&str> = spec.splitn(2, ',').collect();
                let lo: u32 = parts[0].trim().parse().unwrap_or(1);
                let hi: u32 = parts
                    .get(1)
                    .map_or(lo, |s| s.trim().parse().unwrap_or(lo));
                (lo, hi.max(lo))
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars),
                '\\' => match chars.next() {
                    Some('n') => vec!['\n'],
                    Some('t') => vec!['\t'],
                    Some('r') => vec!['\r'],
                    Some(other) => vec![other],
                    None => break,
                },
                other => vec![other],
            };
            let (min, max) = parse_repeat(&mut chars);
            atoms.push(PatternAtom { chars: set, min, max });
        }
        atoms
    }

    /// String strategies from a regex-like pattern: sequences of literal
    /// characters and `[...]` classes (ranges + escapes), each optionally
    /// followed by `{m}`, `{m,n}`, `+`, `*` or `?`. This covers every
    /// pattern used in the workspace's property tests.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let reps = atom.min + rng.below(u64::from(atom.max - atom.min) + 1) as u32;
                if atom.chars.is_empty() {
                    continue;
                }
                for _ in 0..reps {
                    let i = rng.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[i]);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(elem, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __result {
                        panic!(
                            "proptest {} case {}/{} failed:\n{}",
                            stringify!($name),
                            __case,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut __union = $crate::strategy::Union::new();
        $( __union.push($arm); )+
        __union
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}\n{}",
                __l,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            n in 3usize..17,
            v in prop::collection::vec((0u32..10, "[a-z]{1,4}"), 0..8),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&n), "n = {n}");
            prop_assert!(v.len() < 8);
            for (x, s) in &v {
                prop_assert!(*x < 10);
                prop_assert!(!s.is_empty() && s.len() <= 4);
                prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u32..5).prop_map(|i| i * 10),
                (5u32..10).prop_map(|i| i * 100),
            ],
        ) {
            prop_assert!(x % 10 == 0);
        }
    }

    #[test]
    fn samples_are_deterministic_per_case() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u32..1000, 1..20);
        let a = strat.sample(&mut crate::TestRng::for_case("t", 3));
        let b = strat.sample(&mut crate::TestRng::for_case("t", 3));
        let c = strat.sample(&mut crate::TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different cases should draw different streams");
    }
}
