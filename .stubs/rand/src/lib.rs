//! Minimal offline stand-in for `rand` 0.8: a deterministic splitmix64
//! generator behind the `Rng`/`SeedableRng`/`SliceRandom` surface the
//! data generators and partitioner use. Streams differ from upstream
//! rand, which is fine — callers only rely on determinism per seed.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Span and offset arithmetic wrap through u64 so wide signed
                // ranges (e.g. i32::MIN..i32::MAX) don't overflow the signed
                // subtraction; sign-extending casts make the mod-2^64
                // difference equal the true span for every supported width.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            assert_eq!(x, b.gen_range(3usize..17));
        }
        let f = a.gen_range(0.0..1000.0);
        assert!((0.0..1000.0).contains(&f));
        let _ = a.gen_bool(0.5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut a);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = rng.gen_range(i32::MIN..i32::MAX);
            assert!(x < i32::MAX);
            let y = rng.gen_range(i32::MIN..=i32::MAX);
            let _ = y; // whole domain is valid
            let z = rng.gen_range(i64::MIN..i64::MAX);
            assert!(z < i64::MAX);
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0u64..=u64::MAX);
            let _ = u;
        }
    }
}
