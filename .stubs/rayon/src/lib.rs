//! Minimal offline stand-in for `rayon`: `par_iter()` degrades to the
//! sequential iterator, which is semantically identical (and the only
//! call site is a metrics computation, not a hot path).

pub mod prelude {
    /// `par_iter()` on slices/vecs, returning the plain sequential
    /// iterator so the full `Iterator` adapter surface is available.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}
