//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the serde stub.
//!
//! No syn/quote (the build is offline): the input token stream is walked
//! directly. Named and tuple structs serialize field-by-field; enums fall
//! back to their `Debug` rendering — no enum in this workspace is ever
//! serialized onto a wire, the impls only need to exist and compile.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum,
}

fn parse(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // attribute: swallow the bracket group
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde stub derive: expected struct name, got {other:?}"),
                };
                return match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        (name, Shape::Named(named_fields(g.stream())))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        (name, Shape::Tuple(tuple_arity(g.stream())))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::Unit),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde stub derive: generic type {name} not supported")
                    }
                    other => panic!("serde stub derive: unexpected token after struct name: {other:?}"),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde stub derive: expected enum name, got {other:?}"),
                };
                return (name, Shape::Enum);
            }
            Some(_) => {}
            None => panic!("serde stub derive: no struct/enum found"),
        }
    }
}

/// Collect field names of a named-struct body, splitting on commas that
/// sit outside any `<...>` nesting.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    let mut angle = 0i32;
    let mut expect_name = true;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && angle == 0 => {
                iter.next(); // attribute body
            }
            TokenTree::Ident(id) if expect_name && angle == 0 => {
                let word = id.to_string();
                if word == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else {
                    fields.push(word);
                    expect_name = false;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => expect_name = true,
            _ => {}
        }
    }
    fields
}

fn tuple_arity(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in body {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                ',' if angle == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::json_value::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_json_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!(
                "::serde::json_value::Value::Array(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Unit => "::serde::json_value::Value::Null".to_owned(),
        // Enums: no enum here is ever serialized for real; a Debug
        // rendering keeps the derive compiling without a full data model.
        Shape::Enum => {
            "::serde::json_value::Value::Str(::std::format!(\"{:?}\", self))".to_owned()
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_json_value(&self) -> ::serde::json_value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde stub derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl parses")
}
