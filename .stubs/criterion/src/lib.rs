//! Minimal offline stand-in for `criterion`: same macros and types, but
//! measurement is a fixed-budget timing loop with a mean-ns report — no
//! statistics, plots or state. Good enough to keep the bench bins
//! compiling and to give ballpark numbers when run by hand.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    fn run(budget: Duration, mut once: impl FnMut()) -> (u64, f64) {
        // warmup
        once();
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget || iters == 0 {
            once();
            iters += 1;
        }
        let total = start.elapsed().as_nanos() as f64;
        (iters, total / iters as f64)
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let (iters, mean) = Self::run(Duration::from_millis(200), || {
            std::hint::black_box(routine());
        });
        self.iters = iters;
        self.mean_ns = mean;
    }

    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        // setup cost is excluded by timing only the routine
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < Duration::from_millis(200) || iters == 0 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.mean_ns >= 1_000_000.0 {
        println!("{name:<40} {:>12.3} ms/iter ({} iters)", b.mean_ns / 1e6, b.iters);
    } else if b.mean_ns >= 1_000.0 {
        println!("{name:<40} {:>12.3} us/iter ({} iters)", b.mean_ns / 1e3, b.iters);
    } else {
        println!("{name:<40} {:>12.1} ns/iter ({} iters)", b.mean_ns, b.iters);
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name.as_ref(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        mean_ns: 0.0,
    };
    f(&mut b);
    report(name, &b);
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl AsRef<str>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.as_ref()), f);
        self
    }

    pub fn finish(self) {}
}

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
